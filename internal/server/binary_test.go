package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
)

// binaryClient returns a second client for the same server with the binary
// protocol preference enabled.
func binaryClient(t *testing.T, c *Client) *Client {
	t.Helper()
	cb, err := NewClient(c.BaseURL(), nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	cb.Binary = true
	return cb
}

// TestContentNegotiation drives /v1/batch, /v1/cores and /v1/snapshot/export
// through every Content-Type/Accept combination the protocol defines: wrong
// media types get HTTP 415 with the stable wire code, and the Accept header
// selects the response framing.
func TestContentNegotiation(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})

	// Each successful batch case adds a distinct edge (the engine rejects
	// duplicate adds with 409).
	next := 0
	jsonEdge := func() []byte {
		next += 2
		return fmt.Appendf(nil, `{"updates":[{"op":"add","u":%d,"v":%d}]}`, next, next+1)
	}
	binEdge := func() []byte {
		next += 2
		frame, err := persist.AppendBatchFrame(nil, []kcore.Update{kcore.Add(next, next+1)})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		accept      string
		body        []byte
		wantStatus  int
		wantCT      string // response Content-Type for 2xx
	}{
		{"batch json default", http.MethodPost, "/v1/batch", wire.ContentTypeJSON, "",
			jsonEdge(), http.StatusOK, wire.ContentTypeJSON},
		{"batch binary both ways", http.MethodPost, "/v1/batch", wire.ContentTypeBatch, wire.ContentTypeBatch,
			binEdge(), http.StatusOK, wire.ContentTypeBatch},
		{"batch binary in, json out", http.MethodPost, "/v1/batch", wire.ContentTypeBatch, "",
			binEdge(), http.StatusOK, wire.ContentTypeJSON},
		{"batch json in, binary ack", http.MethodPost, "/v1/batch", wire.ContentTypeJSON, wire.ContentTypeBatch,
			jsonEdge(), http.StatusOK, wire.ContentTypeBatch},
		{"batch charset parameter ok", http.MethodPost, "/v1/batch", "application/json; charset=utf-8", "",
			jsonEdge(), http.StatusOK, wire.ContentTypeJSON},
		{"batch wildcard accept", http.MethodPost, "/v1/batch", wire.ContentTypeJSON, "*/*",
			jsonEdge(), http.StatusOK, wire.ContentTypeJSON},
		{"batch wrong content type", http.MethodPost, "/v1/batch", "text/plain", "",
			jsonEdge(), http.StatusUnsupportedMediaType, ""},
		{"batch unsatisfiable accept", http.MethodPost, "/v1/batch", wire.ContentTypeJSON, "text/html",
			jsonEdge(), http.StatusUnsupportedMediaType, ""},
		{"cores default is binary", http.MethodGet, "/v1/cores", "", "",
			nil, http.StatusOK, wire.ContentTypeCores},
		{"cores json", http.MethodGet, "/v1/cores", "", wire.ContentTypeJSON,
			nil, http.StatusOK, wire.ContentTypeJSON},
		{"cores explicit binary", http.MethodGet, "/v1/cores", "", wire.ContentTypeCores,
			nil, http.StatusOK, wire.ContentTypeCores},
		{"cores wildcard", http.MethodGet, "/v1/cores", "", "*/*",
			nil, http.StatusOK, wire.ContentTypeCores},
		{"cores unsatisfiable accept", http.MethodGet, "/v1/cores", "", "text/html",
			nil, http.StatusUnsupportedMediaType, ""},
		{"export default", http.MethodGet, "/v1/snapshot/export", "", "",
			nil, http.StatusOK, wire.ContentTypeSnapshot},
		{"export unsatisfiable accept", http.MethodGet, "/v1/snapshot/export", "", wire.ContentTypeJSON,
			nil, http.StatusUnsupportedMediaType, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, c.BaseURL()+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			ct := resp.Header.Get("Content-Type")
			if tc.wantStatus == http.StatusOK {
				if base, _, _ := strings.Cut(ct, ";"); strings.TrimSpace(base) != tc.wantCT {
					t.Fatalf("Content-Type = %q, want %q", ct, tc.wantCT)
				}
				return
			}
			// Errors always come in the JSON envelope, whatever was negotiated.
			var envelope wire.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
				t.Fatalf("415 body not a wire error envelope: %v", err)
			}
			if envelope.Error.Code != wire.CodeUnsupportedMedia {
				t.Fatalf("error code = %q, want %q", envelope.Error.Code, wire.CodeUnsupportedMedia)
			}
		})
	}
}

// TestBatchBinaryMatchesJSON applies the same batch to two fresh servers,
// one over JSON and one over the binary protocol, and requires identical
// batch info in the acks.
func TestBatchBinaryMatchesJSON(t *testing.T) {
	updates := []wire.Update{
		{Op: wire.OpAdd, U: 0, V: 1}, {Op: wire.OpAdd, U: 1, V: 2},
		{Op: wire.OpAdd, U: 0, V: 2}, {Op: wire.OpAdd, U: 2, V: 3},
		{Op: wire.OpRemove, U: 2, V: 3}, {Op: wire.OpAdd, U: 3, V: 4},
	}
	ctx := context.Background()

	_, cj := newTestServer(t, kcore.NewEngine(), Options{})
	respJSON, err := cj.Batch(ctx, updates)
	if err != nil {
		t.Fatalf("json batch: %v", err)
	}

	_, c2 := newTestServer(t, kcore.NewEngine(), Options{})
	cb := binaryClient(t, c2)
	respBin, err := cb.Batch(ctx, updates)
	if err != nil {
		t.Fatalf("binary batch: %v", err)
	}
	if cb.binaryOff.Load() {
		t.Fatal("binary client fell back to JSON against a binary-capable server")
	}

	slices.Sort(respJSON.CoreChanged)
	slices.Sort(respBin.CoreChanged)
	if fmt.Sprintf("%+v", *respJSON) != fmt.Sprintf("%+v", *respBin) {
		t.Fatalf("batch info diverged:\n  json:   %+v\n  binary: %+v", *respJSON, *respBin)
	}
	// The add/remove pair on (2,3) cancels out in the coalescer: 4 applied.
	if respBin.Applied != 4 || respBin.Seq == 0 {
		t.Fatalf("implausible ack: %+v", *respBin)
	}
}

// TestCoresDumpMatchesEngine checks the bulk core dump against the engine
// in both framings.
func TestCoresDumpMatchesEngine(t *testing.T) {
	e := kcore.NewEngine()
	_, c := newTestServer(t, e, Options{})
	ctx := context.Background()
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 300}}); err != nil {
		t.Fatal(err)
	}
	want := e.Cores()

	cb := binaryClient(t, c)
	for name, cl := range map[string]*Client{"json": c, "binary": cb} {
		resp, err := cl.Cores(ctx)
		if err != nil {
			t.Fatalf("%s cores: %v", name, err)
		}
		if resp.Seq != e.Seq() {
			t.Fatalf("%s cores seq = %d, want %d", name, resp.Seq, e.Seq())
		}
		if !slices.Equal(resp.Cores, want) {
			t.Fatalf("%s cores = %v, want %v", name, resp.Cores, want)
		}
	}
}

// TestSnapshotExportRoundTrip streams the KCORSNAP image and rebuilds an
// engine from it.
func TestSnapshotExportRoundTrip(t *testing.T) {
	e := kcore.NewEngine()
	_, c := newTestServer(t, e, Options{})
	ctx := context.Background()
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	data, err := c.SnapshotExport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := persist.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("exported image did not load: %v", err)
	}
	if restored.Seq() != e.Seq() {
		t.Fatalf("restored seq = %d, want %d", restored.Seq(), e.Seq())
	}
	if !slices.Equal(restored.Cores(), e.Cores()) {
		t.Fatalf("restored cores = %v, want %v", restored.Cores(), e.Cores())
	}
}

// TestWatchBinaryDeliversChanges runs one SSE watcher and one binary
// watcher side by side and requires the same event stream from both.
func TestWatchBinaryDeliversChanges(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})
	cb := binaryClient(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	chJSON, err := c.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chBin, err := cb.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]<-chan Event{"sse": chJSON, "binary": chBin} {
		ev, ok := <-ch
		if !ok || ev.Type != wire.EventHello || ev.Hello == nil {
			t.Fatalf("%s: first event = %+v, want hello", name, ev)
		}
	}

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatal(err)
	}

	collect := func(ch <-chan Event, n int) []wire.ChangeEvent {
		var got []wire.ChangeEvent
		for len(got) < n {
			select {
			case ev, ok := <-ch:
				if !ok {
					t.Fatalf("stream closed after %d changes, want %d", len(got), n)
				}
				if ev.Type == wire.EventChange {
					got = append(got, *ev.Change)
				}
			case <-ctx.Done():
				t.Fatalf("timed out after %d changes, want %d", len(got), n)
			}
		}
		return got
	}
	// First count what the SSE stream produced for this batch, then require
	// the binary stream to deliver exactly the same events.
	first := collect(chJSON, 1)
	// Drain any further changes that arrive promptly.
	deadline := time.After(500 * time.Millisecond)
drain:
	for {
		select {
		case ev, ok := <-chJSON:
			if !ok {
				break drain
			}
			if ev.Type == wire.EventChange {
				first = append(first, *ev.Change)
			}
		case <-deadline:
			break drain
		}
	}
	second := collect(chBin, len(first))
	if !slices.Equal(first, second) {
		t.Fatalf("streams diverged:\n  sse:    %+v\n  binary: %+v", first, second)
	}
}

// TestWatchEncodesOncePerEvent is the fan-out acceptance check: with many
// concurrent watchers in both framings, each change event is encoded exactly
// once per framing — the shared ring's encode counters equal the per-watcher
// event count, not watchers x events.
func TestWatchEncodesOncePerEvent(t *testing.T) {
	s, c := newTestServer(t, kcore.NewEngine(), Options{})
	cb := binaryClient(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	const watchers = 8 // per framing
	streams := make([]<-chan Event, 0, 2*watchers)
	for i := 0; i < watchers; i++ {
		chJ, err := c.Watch(ctx, WatchOptions{Buffer: 4096})
		if err != nil {
			t.Fatal(err)
		}
		chB, err := cb.Watch(ctx, WatchOptions{Buffer: 4096})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, chJ, chB)
	}
	for _, ch := range streams {
		if ev := <-ch; ev.Type != wire.EventHello {
			t.Fatalf("first event = %+v, want hello", ev)
		}
	}

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}

	// Wait for the ring to quiesce: the feed goroutine appends after Apply
	// returns, so poll the encode counter until it stops moving.
	ring := s.hub.current()
	if ring == nil {
		t.Fatal("no active ring")
	}
	var events uint64
	for i := 0; i < 100; i++ {
		n := ring.encodedSSE.Load()
		if n > 0 && n == events {
			break
		}
		events = n
		time.Sleep(20 * time.Millisecond)
	}
	if events == 0 {
		t.Fatal("no events were encoded")
	}

	// Every watcher sees every event...
	for i, ch := range streams {
		var got uint64
		for got < events {
			select {
			case ev, ok := <-ch:
				if !ok {
					t.Fatalf("watcher %d: stream closed after %d/%d changes", i, got, events)
				}
				if ev.Type == wire.EventChange {
					got++
				}
			case <-ctx.Done():
				t.Fatalf("watcher %d: timed out after %d/%d changes", i, got, events)
			}
		}
	}
	// ...yet each event was encoded exactly once per framing.
	if n := ring.encodedSSE.Load(); n != events {
		t.Fatalf("SSE encodes = %d, want %d (one per event)", n, events)
	}
	if n := ring.encodedBin.Load(); n != events {
		t.Fatalf("binary encodes = %d, want %d (one per event)", n, events)
	}
}

// TestClientFallsBackOn415 aims a Binary client at a server that predates
// the binary protocol (stubbed: 415 for binary, JSON otherwise) and checks
// the permanent JSON fallback.
func TestClientFallsBackOn415(t *testing.T) {
	var binaryAttempts, jsonServed int
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ct := r.Header.Get("Content-Type")
		if ct == wire.ContentTypeBatch || r.Header.Get("Accept") == wire.ContentTypeBatch {
			binaryAttempts++
			w.Header().Set("Content-Type", wire.ContentTypeJSON)
			w.WriteHeader(http.StatusUnsupportedMediaType)
			fmt.Fprintf(w, `{"error":{"code":%q,"message":"no binary here"}}`, wire.CodeUnsupportedMedia)
			return
		}
		jsonServed++
		w.Header().Set("Content-Type", wire.ContentTypeJSON)
		fmt.Fprint(w, `{"seq":1,"applied":1,"flushed_with":1}`)
	}))
	defer stub.Close()

	c, err := NewClient(stub.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Binary = true
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := c.Batch(ctx, []wire.Update{{Op: wire.OpAdd, U: 0, V: 1}})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if resp.Seq != 1 {
			t.Fatalf("batch %d: resp = %+v", i, resp)
		}
	}
	if binaryAttempts != 1 {
		t.Fatalf("binary attempts = %d, want 1 (fallback must be permanent)", binaryAttempts)
	}
	if jsonServed != 3 {
		t.Fatalf("json requests = %d, want 3", jsonServed)
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"kcore"
	"kcore/internal/server/wire"
)

// The watch broadcast ring replaces per-subscriber re-encoding on /v1/watch:
// one hub goroutine drains a single engine subscription, encodes every
// CoreChange exactly once into BOTH stream framings (the SSE frame and the
// binary event frame, cached side by side in one ring slot), and each watch
// handler carries only a cursor into the ring plus its own min_core filter.
// 10k watchers therefore cost one serialization per event, not 10k.
//
// Lagged-drop semantics are preserved: a subscriber whose cursor falls more
// than its lag window behind the ring head skips the overwritten events and
// reports them through the cumulative "lagged" count, and the engine-side
// feed subscription's own drops (the hub falling behind the engine) are
// folded into the same count. The engine never blocks on any watcher.

// ringEvent is one broadcast slot. The byte slices are immutable once
// written — an overwriting append replaces the slot's slice headers, never
// the bytes — so a copied-out ringEvent stays valid without holding the
// ring lock.
type ringEvent struct {
	oldCore, newCore int // for per-subscriber min_core filtering
	sse              []byte
	bin              []byte
}

// broadcastRing is a fixed-capacity single-writer multi-reader event ring.
type broadcastRing struct {
	size uint64

	mu     sync.Mutex
	buf    []ringEvent
	head   uint64        // next slot to write; valid slots are [head-min(head,size), head)
	notify chan struct{} // closed and replaced on every append (and on close)
	closed bool
	cancel func() // engine subscription cancel; set by the hub

	// feedDropped counts events the ENGINE dropped because the hub's own
	// subscription buffer overflowed — losses shared by every subscriber.
	feedDropped atomic.Uint64
	// encodedSSE/encodedBin count encode operations, one per event per
	// framing by construction; tests assert they stay independent of the
	// subscriber count.
	encodedSSE atomic.Uint64
	encodedBin atomic.Uint64
}

func newBroadcastRing(size int) *broadcastRing {
	return &broadcastRing{
		size:   uint64(size),
		buf:    make([]ringEvent, size),
		notify: make(chan struct{}),
	}
}

// append encodes one change event (once per framing) and publishes it.
func (r *broadcastRing) append(ev kcore.CoreChange) {
	ce := wire.ChangeEvent{Vertex: ev.Vertex, OldCore: ev.OldCore, NewCore: ev.NewCore, Seq: ev.Seq}
	data, err := json.Marshal(ce)
	if err != nil {
		return // cannot happen for a struct of ints
	}
	r.encodedSSE.Add(1)
	sse := fmt.Appendf(nil, "event: %s\ndata: %s\n\n", wire.EventChange, data)
	r.encodedBin.Add(1)
	bin := wire.AppendChangeFrame(nil, ce)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.buf[r.head%r.size] = ringEvent{oldCore: ev.OldCore, newCore: ev.NewCore, sse: sse, bin: bin}
	r.head++
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

// close ends the ring: the feed subscription is cancelled and every blocked
// subscriber wakes up to observe closed. Idempotent.
func (r *broadcastRing) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.notify)
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// ringCursor is one subscriber's read position.
type ringCursor struct {
	r        *broadcastRing
	next     uint64 // next absolute event index to read
	window   uint64 // lag window: events older than head-window are lost
	minCore  int
	skipped  uint64 // events overwritten before this cursor read them
	feedBase uint64 // feedDropped at subscribe time
}

// subscribe attaches a cursor at the current head. window is the
// subscriber's requested buffer, clamped to the ring capacity; minCore
// mirrors kcore.WithMinCore (deliver when max(OldCore, NewCore) >= k).
func (r *broadcastRing) subscribe(window int, minCore int) *ringCursor {
	w := uint64(window)
	if w < 1 {
		w = 1
	}
	if w > r.size {
		w = r.size
	}
	r.mu.Lock()
	c := &ringCursor{r: r, next: r.head, window: w, minCore: minCore,
		feedBase: r.feedDropped.Load()}
	r.mu.Unlock()
	return c
}

// poll reads the next batch of events into dst[:0] (bounded by cap(dst)),
// applying the cursor's min_core filter. When no event is pending it
// returns a wait channel that closes on the next append; when the ring is
// closed it reports closed. dropped is the cumulative drop count (skipped
// overwrites + the feed's engine-side drops since subscribe).
func (c *ringCursor) poll(dst []ringEvent) (events []ringEvent, dropped uint64, wait <-chan struct{}, closed bool) {
	r := c.r
	events = dst[:0]
	r.mu.Lock()
	if oldest := r.head - min(r.head, c.window); c.next < oldest {
		c.skipped += oldest - c.next
		c.next = oldest
	}
	for c.next < r.head && len(events) < cap(events) {
		ev := r.buf[c.next%r.size]
		c.next++
		if ev.newCore < c.minCore && ev.oldCore < c.minCore {
			continue
		}
		events = append(events, ev)
	}
	if len(events) == 0 && c.next == r.head {
		if r.closed {
			r.mu.Unlock()
			return nil, 0, nil, true
		}
		wait = r.notify
	}
	r.mu.Unlock()
	dropped = c.skipped + (r.feedDropped.Load() - c.feedBase)
	return events, dropped, wait, false
}

// watchHub owns the broadcast ring of the engine currently being served.
// On a follower a re-bootstrap swaps the engine; the first watch request
// that observes the new engine retires the old ring (ending its streams)
// and starts a fresh feed.
type watchHub struct {
	size int

	mu      sync.Mutex
	eng     *kcore.Engine
	ring    *broadcastRing
	stopped bool
}

func newWatchHub(size int) *watchHub { return &watchHub{size: size} }

// ringFor returns the broadcast ring feeding from eng, starting (or
// restarting, after an engine swap) the feed as needed. It returns nil
// after close.
func (h *watchHub) ringFor(eng *kcore.Engine) *broadcastRing {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped {
		return nil
	}
	if h.ring != nil && h.eng == eng {
		return h.ring
	}
	if h.ring != nil {
		h.ring.close()
	}
	r := newBroadcastRing(h.size)
	// The feed buffer matches the ring: the hub only lags the engine when a
	// burst outruns JSON encoding by a full ring, and those losses are
	// reported through feedDropped.
	ch, cancel := eng.Subscribe(kcore.WithBuffer(h.size), kcore.WithDropCounter(&r.feedDropped))
	r.cancel = cancel
	go func() {
		for ev := range ch {
			r.append(ev)
		}
	}()
	h.eng, h.ring = eng, r
	return r
}

// current returns the active ring (nil when none started); tests use it to
// read the encode counters.
func (h *watchHub) current() *broadcastRing {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ring
}

// close retires the hub and its ring. Idempotent.
func (h *watchHub) close() {
	h.mu.Lock()
	h.stopped = true
	r := h.ring
	h.ring = nil
	h.mu.Unlock()
	if r != nil {
		r.close()
	}
}

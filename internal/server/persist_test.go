package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
)

// newPersistentServer boots a server whose engine is managed by a Store in
// a temp directory.
func newPersistentServer(t *testing.T, dir string) (*Server, *Client, *persist.Store) {
	t.Helper()
	st, err := persist.Open(dir, persist.Options{Sync: persist.SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st.Engine(), Options{Persist: st})
	ts := httptest.NewServer(srv.Handler())
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
		_ = st.Close()
	})
	return srv, c, st
}

// TestSnapshotEndpoint drives POST /v1/snapshot over HTTP: it must compact
// the WAL and report the captured seq, and /v1/stats must expose the
// persistence counters.
func TestSnapshotEndpoint(t *testing.T) {
	ctx := context.Background()
	_, c, _ := newPersistentServer(t, t.TempDir())

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	st1, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Persist == nil {
		t.Fatal("stats missing persist section on a persistent server")
	}
	if st1.Persist.WALRecords == 0 || st1.Persist.Appends == 0 {
		t.Fatalf("ingest not logged: %+v", st1.Persist)
	}

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Seq != 4 || snap.Bytes <= 0 {
		t.Fatalf("snapshot response = %+v, want seq 4", snap)
	}
	st2, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Persist.WALRecords != 0 || st2.Persist.SnapshotSeq != 4 {
		t.Fatalf("snapshot did not compact: %+v", st2.Persist)
	}
	if st2.Persist.Compactions < 2 { // Open's initial + this one
		t.Fatalf("compactions = %d, want >= 2", st2.Persist.Compactions)
	}
}

// TestSnapshotEndpointWithoutPersistence pins the no-persistence error.
func TestSnapshotEndpointWithoutPersistence(t *testing.T) {
	srv := New(kcore.NewEngine(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Snapshot(context.Background())
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNoPersistence || we.Status != 409 {
		t.Fatalf("err = %v, want no_persistence / 409", err)
	}
	// Stats omit the persist section entirely.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Persist != nil {
		t.Fatalf("stats.persist = %+v on a non-persistent server", st.Persist)
	}
}

// TestIngestSurvivesRestart is the server-level durability round trip:
// ingest over HTTP, tear the server down, reopen the same directory, and
// the new server serves the same state with a continuous seq.
func TestIngestSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv, c, st := newPersistentServer(t, dir)
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, c2, st2 := newPersistentServer(t, dir)
	if got := st2.Stats().RecoveredSeq; got != 5 {
		t.Fatalf("recovered seq = %d, want 5", got)
	}
	core, err := c2.Core(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if core.Core != 2 || core.Seq != 5 {
		t.Fatalf("restarted core(0) = %+v, want core 2 at seq 5", core)
	}
	// Seq continues, and the new ingest is logged to the recovered WAL.
	resp, err := c2.AddEdges(ctx, [][2]int{{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 6 {
		t.Fatalf("post-restart seq = %d, want 6", resp.Seq)
	}
}

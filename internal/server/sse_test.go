package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/server/wire"
)

func TestWatchDeliversChanges(t *testing.T) {
	e := kcore.NewEngine()
	_, c := newTestServer(t, e, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	events, err := c.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	ev := <-events
	if ev.Type != wire.EventHello || ev.Hello == nil {
		t.Fatalf("first event = %+v, want hello", ev)
	}
	if ev.Hello.Buffer != 256 || ev.Hello.MinCore != 0 {
		t.Fatalf("hello = %+v, want default buffer 256, min_core 0", ev.Hello)
	}

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	// The isolated edge lifts both endpoints 0 -> 1.
	got := map[int]wire.ChangeEvent{}
	for len(got) < 2 {
		select {
		case ev := <-events:
			if ev.Type != wire.EventChange {
				t.Fatalf("unexpected event %+v", ev)
			}
			got[ev.Change.Vertex] = *ev.Change
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d/2 change events", len(got))
		}
	}
	for _, v := range []int{0, 1} {
		ch, ok := got[v]
		if !ok || ch.OldCore != 0 || ch.NewCore != 1 || ch.Seq != 1 {
			t.Fatalf("change for vertex %d = %+v, want 0->1 at seq 1", v, got[v])
		}
	}
}

func TestWatchMinCoreFilter(t *testing.T) {
	e := kcore.NewEngine()
	_, c := newTestServer(t, e, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	events, err := c.Watch(ctx, WatchOptions{MinCore: 2})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if ev := <-events; ev.Type != wire.EventHello || ev.Hello.MinCore != 2 {
		t.Fatalf("hello = %+v, want min_core 2", ev)
	}
	// Path edges only reach core 1 (filtered); closing the triangle lifts
	// all three vertices to 2 (delivered).
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	seen := map[int]bool{}
	for len(seen) < 3 {
		select {
		case ev := <-events:
			if ev.Type != wire.EventChange {
				t.Fatalf("unexpected event %+v", ev)
			}
			if ev.Change.NewCore < 2 && ev.Change.OldCore < 2 {
				t.Fatalf("filtered event leaked: %+v", ev.Change)
			}
			seen[ev.Change.Vertex] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d/3 filtered events", len(seen))
		}
	}
}

// TestWatchCancelWithUnreadEvents: cancelling the watch context while the
// consumer has stopped reading must still end the stream — the parser
// goroutine may be blocked sending into the event channel and has to
// observe the cancellation (regression test for a parser goroutine leak).
func TestWatchCancelWithUnreadEvents(t *testing.T) {
	e := kcore.NewEngine()
	_, c := newTestServer(t, e, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	events, err := c.Watch(ctx, WatchOptions{Buffer: 4096})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if ev := <-events; ev.Type != wire.EventHello {
		t.Fatalf("first event = %+v, want hello", ev)
	}
	// Generate far more events than the client channel buffers (16) while
	// reading none of them, so the parser is parked in its send.
	var batch kcore.Batch
	for i := 0; i < 200; i++ {
		batch = append(batch, kcore.Add(2*i, 2*i+1))
	}
	if _, err := e.Apply(batch); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	waitFor(t, func() bool { return len(events) == cap(events) })
	cancel()
	// The channel must close (after at most its buffered backlog) even
	// though nobody drained it while cancel fired.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, open := <-events:
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed after cancel with an unread backlog")
		}
	}
}

// TestWatchSlowConsumerLags is the drop-on-full contract end to end: a
// consumer that stops reading its TCP stream while the engine keeps
// writing loses events instead of stalling the engine, and — once it
// resumes — receives a "lagged" event carrying the drop count.
func TestWatchSlowConsumerLags(t *testing.T) {
	e := kcore.NewEngine()
	s := New(e, Options{Keepalive: 50 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	// Raw TCP client so the test controls exactly when bytes are read:
	// request the smallest possible subscription buffer and then do not
	// read a single byte while the engine is updated.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// HTTP/1.0 keeps the response unchunked: the stream is raw SSE lines.
	fmt.Fprintf(conn, "GET /v1/watch?buffer=1 HTTP/1.0\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n",
		l.Addr().String())

	// Wait for the subscription to exist before writing, otherwise the
	// updates race the watch registration and nothing is delivered at all.
	waitFor(t, func() bool { return s.Watchers() == 1 })

	// Generate far more event bytes than the kernel socket buffers can
	// absorb: each fresh isolated edge yields two 0->1 change events.
	// With the consumer not reading, the SSE writer blocks on TCP, the
	// 1-slot subscription buffer fills, and the engine's non-blocking
	// delivery drops the rest. If delivery could block, this loop — run
	// with no reader draining the stream — would deadlock the engine.
	const edges = 40000
	start := time.Now()
	var batch kcore.Batch
	for i := 0; i < edges; i++ {
		batch = append(batch, kcore.Add(2*i, 2*i+1))
		if len(batch) == 500 {
			if _, err := e.Apply(batch); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			batch = batch[:0]
		}
	}
	writeDur := time.Since(start)
	t.Logf("applied %d edges in %v with an unread watcher", edges, writeDur)

	// Resume reading: drain the stream and find the lagged event.
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	r := bufio.NewReader(conn)
	// Skip HTTP response headers.
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response headers: %v", err)
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	var laggedLine string
	var changes int
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d change events without a lagged event: %v", changes, err)
		}
		line = strings.TrimSpace(line)
		if line == "event: "+wire.EventChange {
			changes++
		}
		if line == "event: "+wire.EventLagged {
			data, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reading lagged data: %v", err)
			}
			laggedLine = strings.TrimSpace(data)
			break
		}
	}
	if !strings.HasPrefix(laggedLine, "data: ") || !strings.Contains(laggedLine, `"dropped":`) {
		t.Fatalf("lagged payload = %q, want a dropped count", laggedLine)
	}
	if strings.Contains(laggedLine, `"dropped":0`) {
		t.Fatalf("lagged payload reports zero drops: %q", laggedLine)
	}
	// The watcher observed only a prefix of the 2*edges events; with a
	// 1-slot buffer the overwhelming majority must have been dropped.
	if changes >= 2*edges {
		t.Fatalf("watcher received all %d events; expected drops under a stalled consumer", changes)
	}
	t.Logf("watcher saw %d/%d change events before lagged: %s", changes, 2*edges, laggedLine)
}

package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	if out := p.Check(WALWrite); out != (Outcome{}) {
		t.Fatalf("nil plane Check = %+v, want zero", out)
	}
	p.Add(Rule{Op: WALWrite})
	p.Fail(WALWrite, 1, nil)
	p.Clear()
	p.ClearOp(WALWrite)
	if got := p.Fired(WALWrite); got != 0 {
		t.Fatalf("nil plane Fired = %d", got)
	}
	if got := p.Seed(); got != 0 {
		t.Fatalf("nil plane Seed = %d", got)
	}
}

func TestCountedRuleFiresExactly(t *testing.T) {
	p := New(1)
	boom := errors.New("boom")
	p.Fail(WALWrite, 2, boom)
	for i := 0; i < 2; i++ {
		if out := p.Check(WALWrite); !errors.Is(out.Err, boom) {
			t.Fatalf("probe %d: err = %v, want boom", i, out.Err)
		}
	}
	if out := p.Check(WALWrite); out.Err != nil {
		t.Fatalf("exhausted rule still fires: %v", out.Err)
	}
	if got := p.Fired(WALWrite); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	// Other ops are unaffected.
	if out := p.Check(WALSync); out.Err != nil {
		t.Fatalf("unrelated op fired: %v", out.Err)
	}
}

func TestDefaultErrorIsErrInjected(t *testing.T) {
	p := New(1)
	p.Fail(SnapRename, 1, nil)
	if out := p.Check(SnapRename); !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", out.Err)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []bool {
		p := New(7)
		p.Add(Rule{Op: ConnRead, Kind: KindDrop, Prob: 0.3})
		fired := make([]bool, 100)
		for i := range fired {
			fired[i] = p.Check(ConnRead).Drop
		}
		return fired
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at probe %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times, want a strict subset", hits, len(a))
	}
}

func TestClearOpKeepsOtherRules(t *testing.T) {
	p := New(1)
	p.Fail(WALWrite, 0, nil)
	p.Fail(WALSync, 0, nil)
	p.ClearOp(WALWrite)
	if out := p.Check(WALWrite); out.Err != nil {
		t.Fatalf("cleared op still fires: %v", out.Err)
	}
	if out := p.Check(WALSync); out.Err == nil {
		t.Fatal("surviving rule stopped firing")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := Parse("seed=42; wal.write:count=2 ; apply:panic,count=1; conn.read:drop,p=1; apply:delay=3ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed() != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed())
	}
	if out := p.Check(WALWrite); !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("wal.write outcome = %+v", out)
	}
	if out := p.Check(Apply); !out.Panic {
		t.Fatalf("apply outcome = %+v, want panic", out)
	}
	if out := p.Check(Apply); out.Delay != 3*time.Millisecond {
		t.Fatalf("second apply outcome = %+v, want 3ms delay", out)
	}
	if out := p.Check(ConnRead); !out.Drop {
		t.Fatalf("conn.read outcome = %+v, want drop", out)
	}
	for _, bad := range []string{
		"nocolon", "wal.write:p=2", "wal.write:count=x",
		"apply:delay=zzz", "wal.write:wat", "seed=abc;wal.write:error",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestFileShortWriteTearsFrame(t *testing.T) {
	p := New(3)
	dir := t.TempDir()
	f, err := Open(p, "wal", filepath.Join(dir, "log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	p.Add(Rule{Op: "wal.write", Kind: KindShort, Count: 1})
	buf := make([]byte, 1000)
	for i := range buf {
		buf[i] = byte(i)
	}
	n, err := f.Write(buf)
	if err == nil {
		t.Fatal("short write returned no error")
	}
	if n <= 0 || n >= len(buf) {
		t.Fatalf("short write transferred %d of %d bytes, want a strict prefix", n, len(buf))
	}
	st, err := os.Stat(f.Name())
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size() != int64(n) {
		t.Fatalf("file holds %d bytes, reported %d — torn frame must be real", st.Size(), n)
	}
	// The fault is spent: the next write goes through whole.
	if _, err := f.Write(buf); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
}

func TestFileSyncAndRenameFaults(t *testing.T) {
	p := New(1)
	dir := t.TempDir()
	f, err := CreateTemp(p, "snap", dir, "snap-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	defer f.Close()
	p.Fail(SnapSync, 1, nil)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync err = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("post-fault Sync: %v", err)
	}
	p.Fail(SnapRename, 1, nil)
	dst := filepath.Join(dir, "final")
	if err := Rename(p, "snap", f.Name(), dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename err = %v", err)
	}
	if err := Rename(p, "snap", f.Name(), dst); err != nil {
		t.Fatalf("post-fault Rename: %v", err)
	}
}

func TestConnDropClosesUnderlying(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	p := New(1)
	c := WrapConn(p, client)
	p.Add(Rule{Op: ConnWrite, Kind: KindDrop, Count: 1})
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("dropped write returned no error")
	}
	// The underlying conn really closed: the peer's read ends.
	server.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after drop")
	}
}

func TestConnReadFault(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	p := New(1)
	c := WrapConn(p, client)
	boom := errors.New("stalled")
	p.Add(Rule{Op: ConnRead, Kind: KindError, Count: 1, Err: boom})
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, boom) {
		t.Fatalf("read err = %v, want boom", err)
	}
	go server.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("post-fault read: %v", err)
	}
}

func TestBackoffEnvelopeAndCap(t *testing.T) {
	b := &Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	base := b.Min
	for i := 0; i < 10; i++ {
		d := b.Next()
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, base/2, base)
		}
		base *= 2
		if base > b.Max {
			base = b.Max
		}
	}
	// After enough doublings every draw sits inside the capped envelope.
	for i := 0; i < 20; i++ {
		if d := b.Next(); d < b.Max/2 || d > b.Max {
			t.Fatalf("capped delay %v outside [%v, %v]", d, b.Max/2, b.Max)
		}
	}
}

func TestBackoffResetRestartsSchedule(t *testing.T) {
	b := &Backoff{Min: 80 * time.Millisecond, Max: time.Second}
	for i := 0; i < 6; i++ {
		b.Next()
	}
	if b.Attempts() != 6 {
		t.Fatalf("Attempts = %d, want 6", b.Attempts())
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts after Reset = %d, want 0", b.Attempts())
	}
	if d := b.Next(); d < b.Min/2 || d > b.Min {
		t.Fatalf("post-Reset delay %v outside [%v, %v]", d, b.Min/2, b.Min)
	}
}

func TestBackoffDeterministicWithInjectedRand(t *testing.T) {
	b := &Backoff{Min: 100 * time.Millisecond, Max: time.Second, Rand: func(n int64) int64 { return 0 }}
	want := []time.Duration{50, 100, 200, 400, 500, 500}
	for i, w := range want {
		if d := b.Next(); d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

package fault

import (
	"context"
	"net"
	"time"
)

// WrapListener wraps l so accepted connections probe the plane on every
// read and write, and the accept loop itself probes "accept". A nil plane
// returns l unchanged.
func WrapListener(p *Plane, l net.Listener) net.Listener {
	if p == nil {
		return l
	}
	return &listener{Listener: l, p: p}
}

type listener struct {
	net.Listener
	p *Plane
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	out := l.p.Check(Accept)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Err != nil || out.Drop {
		// Model "accept worked but the connection is dead": close it and
		// keep accepting. Returning an error would stop http.Server.
		c.Close()
		return l.Accept()
	}
	return &Conn{Conn: c, p: l.p}, nil
}

// Conn wraps a net.Conn so reads and writes probe the plane ("conn.read"
// / "conn.write"), modeling drops (close mid-operation), stalls (delay)
// and partial transfers (short outcome).
type Conn struct {
	net.Conn
	p *Plane
}

// WrapConn wraps c against the plane; a nil plane returns c unchanged.
func WrapConn(p *Plane, c net.Conn) net.Conn {
	if p == nil {
		return c
	}
	return &Conn{Conn: c, p: p}
}

func (c *Conn) Read(b []byte) (int, error) {
	out := c.p.Check(ConnRead)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Drop {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if out.Err != nil {
		if out.ShortFrac > 0 && len(b) > 1 {
			// Partial read: deliver a prefix now; the error surfaces on a
			// later call if the fault persists.
			n := int(out.ShortFrac * float64(len(b)))
			if n < 1 {
				n = 1
			}
			return c.Conn.Read(b[:n])
		}
		return 0, out.Err
	}
	return c.Conn.Read(b)
}

func (c *Conn) Write(b []byte) (int, error) {
	out := c.p.Check(ConnWrite)
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Drop {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	if out.Err != nil {
		if out.ShortFrac > 0 && len(b) > 1 {
			n := int(out.ShortFrac * float64(len(b)))
			if n < 1 {
				n = 1
			}
			wrote, werr := c.Conn.Write(b[:n])
			if werr != nil {
				return wrote, werr
			}
			return wrote, out.Err
		}
		return 0, out.Err
	}
	return c.Conn.Write(b)
}

// DialFunc matches net.Dialer.DialContext / http.Transport.DialContext.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Dialer wraps a dial function so every produced connection probes the
// plane — how the chaos harness injects faults into a follower's
// replication stream without touching unrelated traffic. base nil uses a
// default net.Dialer. A nil plane returns base (or the default dialer)
// unchanged.
func Dialer(p *Plane, base DialFunc) DialFunc {
	if base == nil {
		var d net.Dialer
		base = d.DialContext
	}
	if p == nil {
		return base
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return &Conn{Conn: c, p: p}, nil
	}
}

package fault

import (
	"io"
	"os"
	"time"
)

// File wraps an *os.File so every operation probes the plane first. The
// probe op is derived from the site the file was opened under:
// "<site>.write", "<site>.sync", "<site>.truncate". A nil plane makes the
// wrapper a plain passthrough, so production code uses File
// unconditionally.
//
// A short-write outcome transfers a prefix of the buffer before failing —
// the bytes really reach the file, producing a genuinely torn frame for
// the recovery path to handle, not just an error return.
type File struct {
	f    *os.File
	p    *Plane
	site string
}

// Open opens path (os.OpenFile semantics) wrapped for the given probe
// site. The open itself probes "<site>.open".
func Open(p *Plane, site, path string, flag int, perm os.FileMode) (*File, error) {
	if out := p.Check(Op(site + ".open")); out.Err != nil {
		return nil, out.Err
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f, p: p, site: site}, nil
}

// CreateTemp mirrors os.CreateTemp wrapped for the given probe site.
func CreateTemp(p *Plane, site, dir, pattern string) (*File, error) {
	if out := p.Check(Op(site + ".open")); out.Err != nil {
		return nil, out.Err
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &File{f: f, p: p, site: site}, nil
}

// Wrap adopts an already-open file under the given probe site.
func Wrap(p *Plane, site string, f *os.File) *File {
	return &File{f: f, p: p, site: site}
}

// Name reports the underlying file's name.
func (f *File) Name() string { return f.f.Name() }

// Write probes "<site>.write", honoring error, delay and short-write
// outcomes, then delegates.
func (f *File) Write(b []byte) (int, error) {
	out := f.p.Check(Op(f.site + ".write"))
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Err != nil {
		if out.ShortFrac > 0 && len(b) > 0 {
			n := int(out.ShortFrac * float64(len(b)))
			if n >= len(b) {
				n = len(b) - 1
			}
			wrote, werr := f.f.Write(b[:n])
			if werr != nil {
				return wrote, werr
			}
			return wrote, out.Err
		}
		return 0, out.Err
	}
	return f.f.Write(b)
}

// Sync probes "<site>.sync", then delegates.
func (f *File) Sync() error {
	out := f.p.Check(Op(f.site + ".sync"))
	if out.Delay > 0 {
		time.Sleep(out.Delay)
	}
	if out.Err != nil {
		return out.Err
	}
	return f.f.Sync()
}

// Truncate probes "<site>.truncate", then delegates.
func (f *File) Truncate(size int64) error {
	if out := f.p.Check(Op(f.site + ".truncate")); out.Err != nil {
		return out.Err
	}
	return f.f.Truncate(size)
}

// Stat delegates (no probe: metadata reads are not a fault surface here).
func (f *File) Stat() (os.FileInfo, error) { return f.f.Stat() }

// Seek delegates (no probe: seeks are in-memory bookkeeping).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

// ReadAt delegates (recovery-path reads are exercised via corruption
// fuzzing, not the fault plane).
func (f *File) ReadAt(b []byte, off int64) (int, error) {
	return f.f.ReadAt(b, off)
}

// Close delegates. Closes are not probed: a file that cannot close cannot
// be modeled without leaking the descriptor.
func (f *File) Close() error { return f.f.Close() }

// Rename probes "<site>.rename" and then performs os.Rename — the atomic
// commit point of snapshot and WAL rewrites.
func Rename(p *Plane, site, oldpath, newpath string) error {
	if out := p.Check(Op(site + ".rename")); out.Err != nil {
		return out.Err
	}
	return os.Rename(oldpath, newpath)
}

var _ io.WriteCloser = (*File)(nil)

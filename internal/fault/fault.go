// Package fault is the repository's single fault-injection plane: a
// deterministic, seedable registry of injection rules consulted from named
// probe points threaded through the storage layer (WAL append, fsync,
// truncate, snapshot IO, rename), the network layer (accepted and dialed
// connections), and the engine apply path (delays and panics).
//
// Production code probes the plane through a *Plane value that is almost
// always nil; every method is nil-safe and a nil plane costs one pointer
// comparison per probe. Tests (and the hidden -chaos flag on kcore-serve)
// install rules naming the operation to sabotage:
//
//	pl := fault.New(42)
//	pl.Fail(fault.WALWrite, 1, errors.New("injected: no space left"))
//
// Rules fire a bounded number of times (Count) with a probability (Prob,
// default 1), drawing from the plane's seeded generator, so a fixed seed
// plus a fixed probe order reproduces a fault schedule exactly. Outcomes
// are returned to the probe site as an Outcome value: an error to surface,
// a delay to sleep, a short write/read fraction, a connection drop, or a
// panic. The plane never acts on its own — each wrapped site interprets
// the outcome with local knowledge (e.g. the WAL turns a short write into
// a torn frame, a conn wrapper closes the socket on a drop).
//
// The package also hosts Backoff, the jittered exponential backoff shared
// by the replication follower's reconnect loop, the HTTP client's
// Retry-After handling, the store's bounded append retry, and the server's
// degraded-mode recovery probe.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op names one probe point. The convention is "<site>.<action>"; the
// constants below cover every point wired in this repository, but the
// plane accepts arbitrary names so tests can add private points.
type Op string

// Probe points threaded through the repository.
const (
	// Storage surface (internal/persist).
	WALWrite    Op = "wal.write"    // WAL frame write
	WALSync     Op = "wal.sync"     // WAL fsync
	WALTruncate Op = "wal.truncate" // WAL rollback/compaction truncate
	WALCompact  Op = "wal.compact"  // whole-log compaction rewrite
	SnapWrite   Op = "snap.write"   // snapshot temp-file write
	SnapSync    Op = "snap.sync"    // snapshot fsync
	SnapRename  Op = "snap.rename"  // snapshot atomic rename

	// Network surface (fault.Listener / fault.Conn / fault.Dialer).
	Accept    Op = "accept"     // listener accept
	ConnRead  Op = "conn.read"  // per-connection read
	ConnWrite Op = "conn.write" // per-connection write

	// Engine surface (Engine apply probe).
	Apply Op = "apply" // start of every batch apply
)

// Kind classifies what a fired rule does to the probed operation.
type Kind int

const (
	// KindError makes the operation fail with the rule's error.
	KindError Kind = iota
	// KindShort makes a write (or read) transfer only a prefix and then
	// fail with the rule's error — a torn frame or partial read.
	KindShort
	// KindDelay stalls the operation without failing it.
	KindDelay
	// KindDrop closes the connection mid-operation (network sites only).
	KindDrop
	// KindPanic panics at the probe site (engine apply site only).
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindShort:
		return "short"
	case KindDelay:
		return "delay"
	case KindDrop:
		return "drop"
	case KindPanic:
		return "panic"
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// ErrInjected is the default error carried by rules that don't specify
// their own. Probe sites wrap or return it verbatim; tests can match it
// with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Rule describes one injection: which operation, what happens, how often,
// and how many times.
type Rule struct {
	// Op is the probe point the rule arms.
	Op Op
	// Kind selects the outcome; the zero value is KindError.
	Kind Kind
	// Count bounds how many times the rule fires; 0 means unlimited.
	Count int
	// Prob is the per-probe firing probability in (0, 1]; 0 means 1
	// (always fire while Count remains).
	Prob float64
	// Err overrides ErrInjected for KindError and KindShort.
	Err error
	// Delay is the stall for KindDelay.
	Delay time.Duration
}

// Outcome is what a probe point must do. The zero value means "proceed
// normally".
type Outcome struct {
	// Err is non-nil for KindError and KindShort outcomes.
	Err error
	// Delay is non-zero for KindDelay outcomes; the site sleeps for it.
	Delay time.Duration
	// ShortFrac is in (0,1) for KindShort outcomes: the fraction of the
	// buffer to transfer before failing with Err.
	ShortFrac float64
	// Drop tells a network site to close the connection.
	Drop bool
	// Panic tells the engine probe to panic.
	Panic bool
}

type rule struct {
	Rule
	fired uint64
}

// Plane is a registry of injection rules plus the seeded generator that
// drives probabilistic firing. A nil *Plane is valid and inert, so
// production structs embed one unconditionally and probe it on every
// operation. All methods are safe for concurrent use; probes serialize on
// an internal mutex, so determinism across runs requires a deterministic
// probe order (single-threaded tests, or schedules armed between episodes
// as the chaos harness does).
type Plane struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  uint64
	rules []*rule
	hits  map[Op]uint64
}

// New builds a plane whose probabilistic draws are driven by seed.
func New(seed uint64) *Plane {
	return &Plane{
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
		hits: make(map[Op]uint64),
	}
}

// Seed reports the seed the plane was built with (for failure reports).
func (p *Plane) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Add arms a rule. Rules for the same op fire in the order added; at most
// one rule fires per probe.
func (p *Plane) Add(r Rule) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, &rule{Rule: r})
}

// Fail is shorthand for the dominant test pattern: make op fail count
// times with err (err nil means ErrInjected).
func (p *Plane) Fail(op Op, count int, err error) {
	p.Add(Rule{Op: op, Kind: KindError, Count: count, Err: err})
}

// Clear disarms every rule. Fired counters are retained.
func (p *Plane) Clear() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = nil
}

// ClearOp disarms every rule for one op, leaving the rest armed.
func (p *Plane) ClearOp(op Op) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.rules[:0]
	for _, r := range p.rules {
		if r.Op != op {
			kept = append(kept, r)
		}
	}
	p.rules = kept
}

// Fired reports how many times any rule has fired at op.
func (p *Plane) Fired(op Op) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[op]
}

// Check probes one operation. It returns the zero Outcome when no rule
// fires (including on a nil plane).
func (p *Plane) Check(op Op) Outcome {
	if p == nil {
		return Outcome{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if r.Op != op {
			continue
		}
		if r.Count > 0 && r.fired >= uint64(r.Count) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		p.hits[op]++
		return p.outcome(r)
	}
	return Outcome{}
}

func (p *Plane) outcome(r *rule) Outcome {
	err := r.Err
	if err == nil {
		err = ErrInjected
	}
	switch r.Kind {
	case KindError:
		return Outcome{Err: err}
	case KindShort:
		// Tear somewhere strictly inside the buffer; the exact point is
		// part of the deterministic schedule.
		return Outcome{Err: err, ShortFrac: 0.1 + 0.8*p.rng.Float64()}
	case KindDelay:
		return Outcome{Delay: r.Delay}
	case KindDrop:
		return Outcome{Drop: true}
	case KindPanic:
		return Outcome{Panic: true}
	}
	return Outcome{}
}

// ApplyProbe adapts the plane to the engine's apply-probe contract
// (Engine.SetApplyProbe): it sleeps on delay outcomes and panics on panic
// outcomes. The panic happens before the engine mutates any state, so a
// quarantined batch is rejected cleanly.
func (p *Plane) ApplyProbe() func(updates int) {
	return func(updates int) {
		out := p.Check(Apply)
		if out.Delay > 0 {
			time.Sleep(out.Delay)
		}
		if out.Panic {
			panic(fmt.Sprintf("fault: injected apply panic (%d updates)", updates))
		}
	}
}

// String summarizes armed rules and fire counts (for logs and failure
// reports).
func (p *Plane) String() string {
	if p == nil {
		return "fault.Plane(nil)"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "fault.Plane(seed=%d", p.seed)
	for _, r := range p.rules {
		fmt.Fprintf(&b, " %s:%s", r.Op, r.Kind)
		if r.Count > 0 {
			fmt.Fprintf(&b, "/%d", r.Count)
		}
		if r.Prob > 0 && r.Prob < 1 {
			fmt.Fprintf(&b, "@%g", r.Prob)
		}
	}
	ops := make([]string, 0, len(p.hits))
	for op := range p.hits {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, " fired[%s]=%d", op, p.hits[Op(op)])
	}
	b.WriteString(")")
	return b.String()
}

// Parse builds a plane from a chaos spec string — the format behind
// kcore-serve's hidden -chaos flag. The spec is semicolon-separated
// entries; the first entry may set the seed, every other entry arms one
// rule:
//
//	seed=42;wal.write:p=0.01;conn.read:p=0.005,drop;apply:panic,count=2
//	wal.sync:count=3;apply:delay=5ms,p=0.1;conn.write:short,p=0.02
//
// An entry is "<op>:<param>,<param>,..." where params are p=<float>,
// count=<int>, delay=<duration>, and the kind words error (default),
// short, drop, panic. A delay= param implies the delay kind.
func Parse(spec string) (*Plane, error) {
	seed, rules, err := ParseRules(spec)
	if err != nil {
		return nil, err
	}
	p := New(seed)
	for _, r := range rules {
		p.Add(r)
	}
	return p, nil
}

// ParseRules parses a spec (see Parse) without building a plane, so a
// caller can construct the plane early (e.g. hand it to a store before
// recovery) and arm the rules later (after recovery, so boot-time replay is
// never faulted).
func ParseRules(spec string) (seed uint64, rules []Rule, err error) {
	seed = 1
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if v, ok := strings.CutPrefix(entry, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			seed = n
			continue
		}
		op, params, ok := strings.Cut(entry, ":")
		if !ok {
			return 0, nil, fmt.Errorf("fault: entry %q needs an <op>:<params> form", entry)
		}
		r := Rule{Op: Op(strings.TrimSpace(op))}
		for _, param := range strings.Split(params, ",") {
			param = strings.TrimSpace(param)
			switch {
			case param == "error":
				r.Kind = KindError
			case param == "short":
				r.Kind = KindShort
			case param == "drop":
				r.Kind = KindDrop
			case param == "panic":
				r.Kind = KindPanic
			case strings.HasPrefix(param, "p="):
				f, err := strconv.ParseFloat(param[2:], 64)
				if err != nil || f <= 0 || f > 1 {
					return 0, nil, fmt.Errorf("fault: bad probability %q in %q", param, entry)
				}
				r.Prob = f
			case strings.HasPrefix(param, "count="):
				n, err := strconv.Atoi(param[6:])
				if err != nil || n < 0 {
					return 0, nil, fmt.Errorf("fault: bad count %q in %q", param, entry)
				}
				r.Count = n
			case strings.HasPrefix(param, "delay="):
				d, err := time.ParseDuration(param[6:])
				if err != nil || d < 0 {
					return 0, nil, fmt.Errorf("fault: bad delay %q in %q", param, entry)
				}
				r.Kind = KindDelay
				r.Delay = d
			default:
				return 0, nil, fmt.Errorf("fault: unknown param %q in %q", param, entry)
			}
		}
		rules = append(rules, r)
	}
	return seed, rules, nil
}

package fault

import (
	"math/rand/v2"
	"time"
)

// Backoff is the repository's shared jittered exponential backoff: the
// replication follower's reconnect loop, the HTTP client's Retry-After
// retries, the store's bounded WAL append retry, and the server's
// degraded-mode recovery probe all pace themselves with it.
//
// Each Next call draws uniformly from [base/2, base] — the documented
// jitter envelope: never less than half the nominal delay, never more
// than it — then doubles base, capped at Max. Reset returns base to Min;
// callers invoke it after a success so the next failure starts cheap
// again. The zero value is not usable; set Min and Max (Min > Max is
// normalized to Max).
//
// Backoff is not safe for concurrent use; each retry loop owns its own.
type Backoff struct {
	// Min is the first nominal delay.
	Min time.Duration
	// Max caps the nominal delay growth.
	Max time.Duration
	// Rand overrides the jitter source (tests); nil uses the process-wide
	// generator.
	Rand func(n int64) int64

	cur      time.Duration
	attempts int
}

// Next returns the delay to sleep before the upcoming attempt and
// advances the schedule.
func (b *Backoff) Next() time.Duration {
	base := b.cur
	if base <= 0 {
		base = b.Min
	}
	if b.Max > 0 && base > b.Max {
		base = b.Max
	}
	if base <= 0 {
		return 0
	}
	// Double for the next round before jittering this one.
	b.cur = base * 2
	if b.Max > 0 && b.cur > b.Max {
		b.cur = b.Max
	}
	b.attempts++
	intn := b.Rand
	if intn == nil {
		intn = rand.Int64N
	}
	return base/2 + time.Duration(intn(int64(base/2)+1))
}

// Reset returns the schedule to Min, as after a success.
func (b *Backoff) Reset() {
	b.cur = 0
	b.attempts = 0
}

// Attempts reports how many Next calls have happened since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempts }

package gen

import (
	"testing"

	"kcore/internal/decomp"
	"kcore/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// Determinism.
	h := ErdosRenyi(100, 300, 1)
	if !g.Equal(h) {
		t.Fatal("same seed produced different graphs")
	}
	d := ErdosRenyi(100, 300, 2)
	if g.Equal(d) {
		t.Fatal("different seeds produced identical graphs")
	}
	if ErdosRenyi(1, 10, 1).NumEdges() != 0 {
		t.Fatal("n=1 should have no edges")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 3)
	if g.NumVertices() != 2000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// m should be close to n*k.
	if g.NumEdges() < 1800*5/2 {
		t.Fatalf("m=%d too small", g.NumEdges())
	}
	// Heavy tail: max degree far above average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("maxdeg=%d avgdeg=%.1f: no skew", g.MaxDegree(), g.AvgDegree())
	}
	if !BarabasiAlbert(2000, 5, 3).Equal(g) {
		t.Fatal("not deterministic")
	}
	if BarabasiAlbert(1, 5, 1).NumEdges() != 0 {
		t.Fatal("n=1 should be edgeless")
	}
	// k < 1 is clamped.
	if BarabasiAlbert(50, 0, 1).NumEdges() == 0 {
		t.Fatal("k clamp failed")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 4)
	if g.NumVertices() != 1024 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() < 3500 {
		t.Fatalf("m=%d, wanted close to 4000", g.NumEdges())
	}
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("maxdeg=%d avgdeg=%.1f: RMAT should be skewed", g.MaxDegree(), g.AvgDegree())
	}
	if !RMAT(10, 4000, 0.57, 0.19, 0.19, 4).Equal(g) {
		t.Fatal("not deterministic")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(60, 60, 0.62, 0.05, 5)
	if g.NumVertices() != 3600 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if mk := decomp.Degeneracy(g); mk != 3 {
		t.Fatalf("road-network analog degeneracy=%d, want 3 (CA)", mk)
	}
	if avg := g.AvgDegree(); avg < 2.4 || avg > 3.2 {
		t.Fatalf("avg degree %.2f out of road-network range (want ~2.8)", avg)
	}
	if !Grid(60, 60, 0.62, 0.05, 5).Equal(g) {
		t.Fatal("not deterministic")
	}
}

func TestCommunity(t *testing.T) {
	g := Community(1000, 8, 0.8, 500, 6)
	if g.NumVertices() != 1000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() < 1000 {
		t.Fatalf("m=%d too small", g.NumEdges())
	}
	// Communities raise the degeneracy above a pure sparse random graph.
	if decomp.Degeneracy(g) < 3 {
		t.Fatalf("degeneracy=%d, communities should produce cores >= 3", decomp.Degeneracy(g))
	}
	if !Community(1000, 8, 0.8, 500, 6).Equal(g) {
		t.Fatal("not deterministic")
	}
	// csize clamp.
	if Community(20, 1, 1.0, 0, 1).NumEdges() == 0 {
		t.Fatal("csize clamp failed")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(500, 3, 0.1, 7)
	if g.NumVertices() != 500 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() < 1200 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	if WattsStrogatz(2, 3, 0.1, 7).NumEdges() != 0 {
		t.Fatal("tiny n should be edgeless")
	}
}

func TestGeneratorsProduceSimpleGraphs(t *testing.T) {
	gs := []*graph.Undirected{
		ErdosRenyi(200, 500, 9),
		BarabasiAlbert(200, 4, 9),
		RMAT(8, 800, 0.57, 0.19, 0.19, 9),
		Grid(15, 15, 0.62, 0.05, 9),
		Community(200, 6, 0.7, 100, 9),
		WattsStrogatz(200, 3, 0.2, 9),
	}
	for i, g := range gs {
		count := 0
		g.ForEachEdge(func(u, v int) {
			count++
			if u == v {
				t.Fatalf("generator %d produced a self loop", i)
			}
		})
		if count != g.NumEdges() {
			t.Fatalf("generator %d: edge iteration %d != m %d", i, count, g.NumEdges())
		}
	}
}

// Package gen provides seeded synthetic graph generators used as offline
// substitutes for the paper's 11 real datasets (see DESIGN.md §3). Each
// generator targets a structural property the maintenance algorithms are
// sensitive to: degree skew (Barabási–Albert, R-MAT), community structure
// (planted partition), and low-core planarity (grid road networks).
package gen

import (
	"math/rand/v2"

	"kcore/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// ErdosRenyi generates G(n, m): m distinct uniform random edges over n
// vertices.
func ErdosRenyi(n, m int, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	g := graph.New(n)
	if n < 2 {
		return g
	}
	for g.NumEdges() < m {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to k distinct existing vertices chosen proportionally to degree
// (approximated by sampling endpoints of existing edges). Produces the
// heavy-tailed degree distributions of social networks.
func BarabasiAlbert(n, k int, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	g := graph.New(n)
	if n < 2 {
		return g
	}
	if k < 1 {
		k = 1
	}
	// endpoints records every edge endpoint: sampling from it is sampling
	// vertices proportionally to degree.
	endpoints := make([]int, 0, 2*n*k)
	// Seed clique over the first k+1 vertices.
	seedSize := k + 1
	if seedSize > n {
		seedSize = n
	}
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			if err := g.AddEdge(u, v); err == nil {
				endpoints = append(endpoints, u, v)
			}
		}
	}
	for v := seedSize; v < n; v++ {
		attached := 0
		for tries := 0; attached < k && tries < 20*k; tries++ {
			var u int
			if len(endpoints) == 0 {
				u = rng.IntN(v)
			} else {
				u = endpoints[rng.IntN(len(endpoints))]
			}
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err == nil {
				endpoints = append(endpoints, u, v)
				attached++
			}
		}
	}
	return g
}

// RMAT generates a recursive-matrix graph with 2^scale vertices and
// approximately m edges using partition probabilities (a, b, c, d) with
// a+b+c+d = 1. Duplicate edges and self loops are retried a bounded number
// of times, so the edge count may fall slightly short on dense settings.
// Produces skewed web/citation-like graphs.
func RMAT(scale, m int, a, b, c float64, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	n := 1 << scale
	g := graph.New(n)
	for attempt := 0; g.NumEdges() < m && attempt < 20*m; attempt++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// Grid generates a road-network analog on a rows*cols lattice: each lattice
// edge is kept with probability keepP, and with probability diagP a cell
// gets both diagonals (a fully triangulated "city block", producing the
// small max-core-3 pockets real road networks show). With keepP ~0.65 and
// diagP ~0.08 the average degree lands near the paper's CA dataset (2.8).
func Grid(rows, cols int, keepP, diagP float64, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < keepP && !g.HasEdge(id(r, c), id(r, c+1)) {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows && rng.Float64() < keepP && !g.HasEdge(id(r, c), id(r+1, c)) {
				mustAdd(g, id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < diagP {
				// Triangulate the whole cell (adds missing boundary too).
				cell := [4]int{id(r, c), id(r, c+1), id(r+1, c), id(r+1, c+1)}
				for i := 0; i < 4; i++ {
					for j := i + 1; j < 4; j++ {
						if !g.HasEdge(cell[i], cell[j]) {
							mustAdd(g, cell[i], cell[j])
						}
					}
				}
			}
		}
	}
	return g
}

// Community generates a planted-partition graph: n vertices split into
// communities of size csize; within-community edges appear with probability
// pIn, and mOut random cross-community edges are added. A collaboration
// network (DBLP-like) analog.
func Community(n, csize int, pIn float64, mOut int, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	g := graph.New(n)
	if csize < 2 {
		csize = 2
	}
	for start := 0; start < n; start += csize {
		end := start + csize
		if end > n {
			end = n
		}
		for u := start; u < end; u++ {
			for v := u + 1; v < end; v++ {
				if rng.Float64() < pIn {
					mustAdd(g, u, v)
				}
			}
		}
	}
	for added := 0; added < mOut; {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || u/csize == v/csize || g.HasEdge(u, v) {
			continue
		}
		mustAdd(g, u, v)
		added++
	}
	return g
}

// WattsStrogatz generates a small-world ring lattice: n vertices, each
// connected to its k nearest neighbors on each side, with each edge rewired
// to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	g := graph.New(n)
	if n < 3 {
		return g
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				for tries := 0; tries < 10; tries++ {
					w := rng.IntN(n)
					if w != u && !g.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			if u != v && !g.HasEdge(u, v) {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

func mustAdd(g *graph.Undirected, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

package workload

import (
	"math"
	"math/rand/v2"

	"kcore/internal/graph"
)

// ChurnOptions configures Churn.
type ChurnOptions struct {
	// AddFraction is the probability that an op is an insertion; zero or
	// negative selects the default 0.5. A pure-removal stream is therefore
	// not expressible — nor would it be stable: insertions are forced
	// whenever the present-edge set drains empty. Removals are drawn
	// uniformly from the then-present edges, so the stream is valid by
	// construction.
	AddFraction float64
	// Skew in [0, 1) concentrates endpoint selection on a hot subset of
	// vertices: 0 is uniform; as skew approaches 1, insertions increasingly
	// target the same few (randomly chosen) hot vertices, driving up the
	// conflict rate between nearby updates. This is the knob that stresses
	// a conflict-grouping batch planner realistically — hub-centric streams
	// serialize, scattered streams parallelize.
	Skew float64
	// Seed drives the stream deterministically.
	Seed uint64
}

// Churn generates a mixed insert/remove stream of ops updates that is valid
// against g when applied in order: every removal targets a then-present
// edge, every insertion a then-absent non-loop pair. g itself is not
// mutated. Removals may target g's original edges, so replaying the stream
// exercises removals on the seeded graph, not just take-backs of the
// stream's own insertions.
func Churn(g *graph.Undirected, ops int, opt ChurnOptions) []Op {
	if opt.AddFraction <= 0 {
		opt.AddFraction = 0.5
	}
	if opt.Skew < 0 {
		opt.Skew = 0
	}
	if opt.Skew >= 1 {
		opt.Skew = 0.999
	}
	rng := rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x9e3779b97f4a7c15))
	n := g.NumVertices()
	if n < 2 || ops <= 0 {
		return nil
	}

	// Hot-vertex selection: rank r is drawn with density concentrated near
	// 0 (r = floor(n * u^e), e = 1/(1-skew) >= 1), and ranks are mapped to
	// vertex ids through a random permutation so the hot set is scattered
	// across the id space rather than always 0..k.
	perm := rng.Perm(n)
	exp := 1.0 / (1.0 - opt.Skew)
	pick := func() int {
		r := int(math.Pow(rng.Float64(), exp) * float64(n))
		if r >= n {
			r = n - 1
		}
		return perm[r]
	}

	// Present-edge bookkeeping: slice for uniform removal sampling, index
	// map for O(1) membership and deletion.
	type key [2]int
	norm := func(u, v int) key {
		if u > v {
			u, v = v, u
		}
		return key{u, v}
	}
	var present []Edge
	pos := make(map[key]int, g.NumEdges()+ops)
	g.ForEachEdge(func(u, v int) {
		pos[norm(u, v)] = len(present)
		present = append(present, Edge{U: u, V: v})
	})

	out := make([]Op, 0, ops)
	for len(out) < ops {
		if rng.Float64() < opt.AddFraction || len(present) == 0 {
			// Insertion: skewed endpoints, retried past loops and present
			// edges. The retry cap guards against a saturated hot set; the
			// uniform fallback always finds a non-edge in sparse graphs.
			var u, v int
			found := false
			for try := 0; try < 32; try++ {
				u, v = pick(), pick()
				if u != v {
					if _, ok := pos[norm(u, v)]; !ok {
						found = true
						break
					}
				}
			}
			for !found {
				u, v = rng.IntN(n), rng.IntN(n)
				if u != v {
					if _, ok := pos[norm(u, v)]; !ok {
						found = true
					}
				}
			}
			pos[norm(u, v)] = len(present)
			present = append(present, Edge{U: u, V: v})
			out = append(out, Op{Insert: true, E: Edge{U: u, V: v}})
		} else {
			i := rng.IntN(len(present))
			victim := present[i]
			last := len(present) - 1
			present[i] = present[last]
			pos[norm(present[i].U, present[i].V)] = i
			present = present[:last]
			delete(pos, norm(victim.U, victim.V))
			out = append(out, Op{Insert: false, E: victim})
		}
	}
	return out
}

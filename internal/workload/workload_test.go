package workload

import (
	"testing"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

func testGraph(t *testing.T) *graph.Undirected {
	t.Helper()
	return gen.ErdosRenyi(200, 600, 3)
}

func TestSampleEdges(t *testing.T) {
	g := testGraph(t)
	es := SampleEdges(g, 100, 1)
	if len(es) != 100 {
		t.Fatalf("len=%d", len(es))
	}
	seen := map[Edge]bool{}
	for _, e := range es {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("sampled non-edge %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate sample %v", e)
		}
		seen[e] = true
	}
	// Oversampling clamps to m.
	if got := SampleEdges(g, 10_000, 1); len(got) != g.NumEdges() {
		t.Fatalf("oversample len=%d want %d", len(got), g.NumEdges())
	}
	// Determinism.
	es2 := SampleEdges(g, 100, 1)
	for i := range es {
		if es[i] != es2[i] {
			t.Fatal("same seed gave different samples")
		}
	}
}

func TestLatestEdges(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 2)
	es := LatestEdges(g, 50)
	if len(es) != 50 {
		t.Fatalf("len=%d", len(es))
	}
	// All returned edges touch high-id ("recent") vertices: their younger
	// endpoint must be >= the younger endpoint of any excluded edge.
	minIncluded := 1 << 30
	for _, e := range es {
		hi := e.U
		if e.V > hi {
			hi = e.V
		}
		if hi < minIncluded {
			minIncluded = hi
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("latest edge %v not in graph", e)
		}
	}
	if minIncluded < 400 {
		t.Fatalf("latest edges include old edge (max endpoint %d)", minIncluded)
	}
}

func TestSampleNonEdges(t *testing.T) {
	g := testGraph(t)
	es := SampleNonEdges(g, 80, 4)
	if len(es) != 80 {
		t.Fatalf("len=%d", len(es))
	}
	for _, e := range es {
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("non-edge sample %v exists", e)
		}
		if e.U == e.V {
			t.Fatalf("self pair %v", e)
		}
	}
	if got := SampleNonEdges(graph.New(1), 5, 1); len(got) != 0 {
		t.Fatal("non-edges of a single vertex graph should be empty")
	}
}

func TestPartition(t *testing.T) {
	es := make([]Edge, 103)
	groups := Partition(es, 10)
	total := 0
	for _, gq := range groups {
		total += len(gq)
	}
	if total != 103 {
		t.Fatalf("partition lost edges: %d", total)
	}
	if len(groups) != 10 {
		t.Fatalf("groups=%d", len(groups))
	}
	if len(Partition(es, 0)) != 1 {
		t.Fatal("groups<1 should clamp to 1")
	}
}

func TestMixedStream(t *testing.T) {
	es := make([]Edge, 200)
	for i := range es {
		es[i] = Edge{U: i, V: i + 1000}
	}
	ops := MixedStream(es, 0, 1)
	if len(ops) != 200 {
		t.Fatalf("p=0 should be pure insertion, got %d ops", len(ops))
	}
	ops = MixedStream(es, 0.5, 1)
	removes := 0
	present := map[Edge]bool{}
	for _, op := range ops {
		if op.Insert {
			if present[op.E] {
				t.Fatalf("double insert of %v", op.E)
			}
			present[op.E] = true
		} else {
			removes++
			if !present[op.E] {
				t.Fatalf("remove of absent edge %v", op.E)
			}
			delete(present, op.E)
		}
	}
	if removes < 50 {
		t.Fatalf("p=0.5 produced only %d removals", removes)
	}
}

func TestVertexAndEdgeSample(t *testing.T) {
	g := testGraph(t)
	vs := VertexSample(g, 0.5, 2)
	if vs.NumVertices() != g.NumVertices() {
		t.Fatalf("vertex sample changed n: %d", vs.NumVertices())
	}
	if vs.NumEdges() >= g.NumEdges() || vs.NumEdges() == 0 {
		t.Fatalf("vertex sample m=%d (orig %d)", vs.NumEdges(), g.NumEdges())
	}
	es := EdgeSample(g, 0.5, 2)
	if es.NumEdges() >= g.NumEdges() || es.NumEdges() == 0 {
		t.Fatalf("edge sample m=%d (orig %d)", es.NumEdges(), g.NumEdges())
	}
	full := EdgeSample(g, 1.01, 2)
	if full.NumEdges() != g.NumEdges() {
		t.Fatalf("frac>1 should keep all edges")
	}
}

func TestRemoveAll(t *testing.T) {
	g := testGraph(t)
	es := SampleEdges(g, 50, 9)
	before := g.NumEdges()
	RemoveAll(g, es)
	if g.NumEdges() != before-50 {
		t.Fatalf("m=%d want %d", g.NumEdges(), before-50)
	}
	// Idempotent on absent edges.
	RemoveAll(g, es)
	if g.NumEdges() != before-50 {
		t.Fatal("second RemoveAll changed the graph")
	}
}

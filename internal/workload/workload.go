// Package workload builds the edge-update workloads of the paper's
// evaluation (Section VII): uniform and "latest-first" edge samples, group
// partitions for the stability test, mixed insert/remove streams, and the
// vertex/edge subsampling used by the scalability test.
package workload

import (
	"math/rand/v2"
	"sort"

	"kcore/internal/graph"
)

// Edge is an undirected edge.
type Edge struct{ U, V int }

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
}

// SampleEdges draws count distinct edges of g uniformly at random (all
// edges when count >= m). This mirrors the paper's random sampling for the
// eight non-temporal graphs.
func SampleEdges(g *graph.Undirected, count int, seed uint64) []Edge {
	all := g.Edges()
	rng := newRNG(seed)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if count > len(all) {
		count = len(all)
	}
	out := make([]Edge, count)
	for i := 0; i < count; i++ {
		out[i] = Edge{U: all[i][0], V: all[i][1]}
	}
	return out
}

// LatestEdges returns the count edges whose younger endpoint is largest,
// approximating the paper's "latest timestamp" selection on temporal
// graphs: the synthetic social analogs grow by vertex arrival, so an edge's
// creation time is ordered by its larger endpoint id.
func LatestEdges(g *graph.Undirected, count int) []Edge {
	all := g.Edges()
	// Sort by max endpoint ascending, then take the tail. Insertion-sort
	// style partial selection would do; a full sort keeps this simple.
	sortEdgesByMaxEndpoint(all)
	if count > len(all) {
		count = len(all)
	}
	tail := all[len(all)-count:]
	out := make([]Edge, len(tail))
	for i, e := range tail {
		out[i] = Edge{U: e[0], V: e[1]}
	}
	return out
}

func sortEdgesByMaxEndpoint(edges [][2]int) {
	key := func(e [2]int) int {
		if e[0] > e[1] {
			return e[0]
		}
		return e[1]
	}
	sort.Slice(edges, func(i, j int) bool { return key(edges[i]) < key(edges[j]) })
}

// SampleNonEdges draws count distinct vertex pairs that are not edges of g,
// for insertion workloads on top of an existing graph.
func SampleNonEdges(g *graph.Undirected, count int, seed uint64) []Edge {
	rng := newRNG(seed)
	n := g.NumVertices()
	out := make([]Edge, 0, count)
	seen := make(map[[2]int]bool, count)
	if n < 2 {
		return out
	}
	for len(out) < count {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := [2]int{u, v}
		if seen[k] || g.HasEdge(u, v) {
			continue
		}
		seen[k] = true
		out = append(out, Edge{U: u, V: v})
	}
	return out
}

// Partition splits edges into groups contiguous groups of near-equal size
// (the stability test's group structure).
func Partition(edges []Edge, groups int) [][]Edge {
	if groups < 1 {
		groups = 1
	}
	out := make([][]Edge, 0, groups)
	per := (len(edges) + groups - 1) / groups
	for start := 0; start < len(edges); start += per {
		end := start + per
		if end > len(edges) {
			end = len(edges)
		}
		out = append(out, edges[start:end])
	}
	return out
}

// Op is a single update in a mixed stream.
type Op struct {
	Insert bool
	E      Edge
}

// MixedStream interleaves the insertion of edges with random removals: after
// each insertion, with probability p one previously (re)inserted edge is
// removed (and becomes eligible for reinsertion later). This is the
// workload of the paper's Fig. 12c/12d stability experiment.
func MixedStream(edges []Edge, p float64, seed uint64) []Op {
	rng := newRNG(seed)
	var ops []Op
	var present []Edge
	for _, e := range edges {
		ops = append(ops, Op{Insert: true, E: e})
		present = append(present, e)
		if p > 0 && rng.Float64() < p && len(present) > 0 {
			i := rng.IntN(len(present))
			victim := present[i]
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			ops = append(ops, Op{Insert: false, E: victim})
		}
	}
	return ops
}

// VertexSample returns the subgraph induced by a uniform fraction of the
// vertices (Fig. 11a/11b: vary |V|).
func VertexSample(g *graph.Undirected, frac float64, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	n := g.NumVertices()
	keep := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < frac {
			keep[v] = true
		}
	}
	return g.InducedSubgraph(keep)
}

// EdgeSample returns a subgraph keeping a uniform fraction of the edges,
// preserving all vertices (Fig. 11c/11d: vary |E|).
func EdgeSample(g *graph.Undirected, frac float64, seed uint64) *graph.Undirected {
	rng := newRNG(seed)
	s := graph.New(g.NumVertices())
	g.ForEachEdge(func(u, v int) {
		if rng.Float64() < frac {
			if err := s.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	})
	return s
}

// RemoveAll removes the given edges from g (ignoring already-absent ones)
// so they can be reinserted by a maintenance workload.
func RemoveAll(g *graph.Undirected, edges []Edge) {
	for _, e := range edges {
		_ = g.RemoveEdge(e.U, e.V)
	}
}

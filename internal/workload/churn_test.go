package workload

import (
	"testing"

	"kcore/internal/gen"
)

// TestChurnValidity: replaying the stream against a graph copy must never
// hit a duplicate insertion or missing removal.
func TestChurnValidity(t *testing.T) {
	for _, skew := range []float64{0, 0.5, 0.9} {
		for _, addFrac := range []float64{0.3, 0.5, 0.8} {
			g := gen.ErdosRenyi(300, 900, 7)
			ops := Churn(g, 2000, ChurnOptions{AddFraction: addFrac, Skew: skew, Seed: 11})
			if len(ops) != 2000 {
				t.Fatalf("got %d ops, want 2000", len(ops))
			}
			sim := g.Clone()
			adds := 0
			for i, op := range ops {
				var err error
				if op.Insert {
					adds++
					err = sim.AddEdge(op.E.U, op.E.V)
				} else {
					err = sim.RemoveEdge(op.E.U, op.E.V)
				}
				if err != nil {
					t.Fatalf("skew=%v add=%v: op %d (%+v) invalid: %v", skew, addFrac, i, op, err)
				}
			}
			frac := float64(adds) / float64(len(ops))
			if frac < addFrac-0.08 || frac > addFrac+0.08 {
				t.Fatalf("skew=%v: add fraction %.3f, want ~%.2f", skew, frac, addFrac)
			}
		}
	}
}

// TestChurnDeterminism: same seed, same stream; different seed, different
// stream.
func TestChurnDeterminism(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 3)
	a := Churn(g, 500, ChurnOptions{Skew: 0.6, Seed: 5})
	b := Churn(g, 500, ChurnOptions{Skew: 0.6, Seed: 5})
	c := Churn(g, 500, ChurnOptions{Skew: 0.6, Seed: 6})
	if len(a) != len(b) {
		t.Fatal("length mismatch for same seed")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs for same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	diff := false
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			diff = true
			break
		}
	}
	if !same || !diff {
		t.Fatal("determinism check failed")
	}
}

// TestChurnSkewConcentratesLoad: with high skew, the most-touched vertex
// must participate in far more insertions than under uniform selection.
func TestChurnSkewConcentratesLoad(t *testing.T) {
	g := gen.ErdosRenyi(400, 400, 9)
	maxTouches := func(skew float64) int {
		touches := make([]int, g.NumVertices())
		for _, op := range Churn(g, 3000, ChurnOptions{AddFraction: 0.9, Skew: skew, Seed: 13}) {
			if op.Insert {
				touches[op.E.U]++
				touches[op.E.V]++
			}
		}
		m := 0
		for _, c := range touches {
			if c > m {
				m = c
			}
		}
		return m
	}
	uniform, hot := maxTouches(0), maxTouches(0.9)
	if hot < 3*uniform {
		t.Fatalf("skew 0.9 max touches %d not clearly above uniform %d", hot, uniform)
	}
}

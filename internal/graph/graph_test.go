package graph

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Undirected
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero value not empty: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("HasEdge on empty graph")
	}
	if g.Degree(5) != 0 {
		t.Fatal("Degree of unknown vertex should be 0")
	}
	if g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("degenerate degree stats wrong")
	}
}

func TestNewAllocatesVertices(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 {
		t.Fatalf("New(5): n=%d", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("New(5): m=%d", g.NumEdges())
	}
	g2 := New(0)
	if g2.NumVertices() != 0 {
		t.Fatalf("New(0): n=%d", g2.NumVertices())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	var g Undirected
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.NumEdges() != 1 || g.NumVertices() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate edge error = %v", err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("reversed duplicate edge error = %v", err)
	}
	if err := g.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("negative vertex error = %v", err)
	}
}

func TestAddEdgeGrowsVertices(t *testing.T) {
	var g Undirected
	if err := g.AddEdge(3, 7); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Fatalf("n=%d, want 8", g.NumVertices())
	}
	if g.Degree(3) != 1 || g.Degree(7) != 1 || g.Degree(5) != 0 {
		t.Fatal("degrees wrong after growth")
	}
}

func TestRemoveEdge(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 1, 2)
	mustAdd(t, &g, 0, 2)
	if err := g.RemoveEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge survived removal")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
	if err := g.RemoveEdge(0, 1); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("missing edge error = %v", err)
	}
	if err := g.RemoveEdge(9, 10); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("unknown vertices error = %v", err)
	}
	// Re-adding after removal must work.
	mustAdd(t, &g, 0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("re-added edge missing")
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	id := g.AddVertex()
	if id != 2 || g.NumVertices() != 3 {
		t.Fatalf("AddVertex id=%d n=%d", id, g.NumVertices())
	}
}

func TestNeighborsAndAppend(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 0, 2)
	mustAdd(t, &g, 0, 3)
	got := g.AppendNeighbors(nil, 0)
	sort.Ints(got)
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("neighbors = %v, want %v", got, want)
	}
	if g.Neighbors(99) != nil {
		t.Fatal("Neighbors of unknown vertex should be nil")
	}
}

func TestForEachEdgeAndEdges(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 2, 1)
	mustAdd(t, &g, 0, 3)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized u<v", e)
		}
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v reported but absent", e)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 1, 2)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	if err := c.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	mustAdd(t, c, 0, 5)
	if g.NumVertices() != 3 {
		t.Fatal("clone vertex growth leaked into original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 1, 2)
	mustAdd(t, &g, 2, 3)
	keep := []bool{true, true, true, false}
	s := g.InducedSubgraph(keep)
	if s.NumVertices() != g.NumVertices() {
		t.Fatalf("induced n=%d", s.NumVertices())
	}
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 2) || s.HasEdge(2, 3) {
		t.Fatal("induced edge set wrong")
	}
}

func TestEqual(t *testing.T) {
	var a, b Undirected
	mustAdd(t, &a, 0, 1)
	mustAdd(t, &b, 0, 1)
	if !a.Equal(&b) {
		t.Fatal("equal graphs reported unequal")
	}
	mustAdd(t, &b, 1, 2)
	if a.Equal(&b) {
		t.Fatal("unequal edge counts reported equal")
	}
	var c Undirected
	mustAdd(t, &c, 0, 2)
	c.EnsureVertex(1)
	if a.NumVertices() == c.NumVertices() && a.Equal(&c) {
		t.Fatal("different edge sets reported equal")
	}
}

// TestRandomizedAgainstMapModel drives the graph with random operations and
// checks every observable against a simple map-based reference model.
func TestRandomizedAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 40
	var g Undirected
	g.EnsureVertex(n - 1)
	ref := make(map[[2]int]bool)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for step := 0; step < 5000; step++ {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			continue
		}
		if rng.IntN(2) == 0 {
			err := g.AddEdge(u, v)
			if ref[key(u, v)] {
				if !errors.Is(err, ErrDuplicateEdge) {
					t.Fatalf("step %d: expected duplicate error, got %v", step, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: add: %v", step, err)
				}
				ref[key(u, v)] = true
			}
		} else {
			err := g.RemoveEdge(u, v)
			if ref[key(u, v)] {
				if err != nil {
					t.Fatalf("step %d: remove: %v", step, err)
				}
				delete(ref, key(u, v))
			} else if !errors.Is(err, ErrMissingEdge) {
				t.Fatalf("step %d: expected missing error, got %v", step, err)
			}
		}
		if g.NumEdges() != len(ref) {
			t.Fatalf("step %d: m=%d want %d", step, g.NumEdges(), len(ref))
		}
	}
	// Final full comparison of edge sets and degrees.
	deg := make([]int, n)
	for e := range ref {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("model edge %v missing", e)
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != deg[v] {
			t.Fatalf("degree(%d)=%d want %d", v, g.Degree(v), deg[v])
		}
	}
	g.ForEachEdge(func(u, v int) {
		if !ref[key(u, v)] {
			t.Fatalf("graph edge (%d,%d) not in model", u, v)
		}
	})
}

func TestQuickDegreeSum(t *testing.T) {
	// Property: sum of degrees == 2m for arbitrary edge sets.
	f := func(pairs [][2]uint8) bool {
		var g Undirected
		for _, p := range pairs {
			u, v := int(p[0])%50, int(p[1])%50
			if u != v {
				_ = g.AddEdge(u, v) // duplicates allowed to fail
			}
		}
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment

0 1
1 2 extra-ignored
2 0
2 2
0 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m=%d want 3 (dup and self loop skipped)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"-1 2\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	var g Undirected
	g.EnsureVertex(29)
	for i := 0; i < 100; i++ {
		u, v := rng.IntN(30), rng.IntN(30)
		if u != v && !g.HasEdge(u, v) {
			mustAdd(t, &g, u, v)
		}
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, &g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != h.NumEdges() {
		t.Fatalf("round trip m: %d vs %d", g.NumEdges(), h.NumEdges())
	}
	g.ForEachEdge(func(u, v int) {
		if !h.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost in round trip", u, v)
		}
	})
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 16 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteEdgeListError(t *testing.T) {
	var g Undirected
	for i := 0; i < 50; i++ {
		mustAdd(t, &g, i, i+50)
	}
	if err := WriteEdgeList(&failWriter{}, &g); err == nil {
		t.Fatal("expected write error to propagate")
	}
}

func TestBFS(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 1, 2)
	mustAdd(t, &g, 3, 4)
	var visited []int
	g.BFS(0, nil, func(v int) bool { visited = append(visited, v); return true })
	sort.Ints(visited)
	if len(visited) != 3 || visited[0] != 0 || visited[2] != 2 {
		t.Fatalf("BFS visited %v", visited)
	}
	// Early stop.
	count := 0
	g.BFS(0, nil, func(v int) bool { count++; return false })
	if count != 1 {
		t.Fatalf("BFS early stop visited %d", count)
	}
	// Eligibility filter.
	visited = visited[:0]
	g.BFS(0, func(v int) bool { return v != 1 }, func(v int) bool { visited = append(visited, v); return true })
	if len(visited) != 1 || visited[0] != 0 {
		t.Fatalf("filtered BFS visited %v", visited)
	}
	// Unknown source is a no-op.
	g.BFS(99, nil, func(v int) bool { t.Fatal("visited from unknown source"); return false })
}

func TestConnectedComponents(t *testing.T) {
	var g Undirected
	mustAdd(t, &g, 0, 1)
	mustAdd(t, &g, 1, 2)
	mustAdd(t, &g, 3, 4)
	g.EnsureVertex(5)
	label, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("k=%d want 3", k)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("component 0-1-2 split")
	}
	if label[3] != label[4] {
		t.Fatal("component 3-4 split")
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Fatal("isolated vertex merged")
	}
}

func mustAdd(t *testing.T, g *Undirected, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// TestHybridIndexPromotion pins the hybrid adjacency invariants: no map
// below the degree threshold, promotion exactly when the threshold is
// crossed, sticky promotion on the way down, and a map index that stays
// consistent with the slice across swap-removes in both regimes.
func TestHybridIndexPromotion(t *testing.T) {
	var g Undirected
	hub := 0
	for v := 1; v <= IndexThreshold; v++ {
		if err := g.AddEdge(hub, v); err != nil {
			t.Fatal(err)
		}
		if g.pos[hub] != nil {
			t.Fatalf("hub promoted at degree %d, threshold is %d", g.Degree(hub), IndexThreshold)
		}
		if g.pos[v] != nil {
			t.Fatalf("degree-1 vertex %d has a map index", v)
		}
	}
	if err := g.AddEdge(hub, IndexThreshold+1); err != nil {
		t.Fatal(err)
	}
	if g.pos[hub] == nil {
		t.Fatalf("hub not promoted at degree %d", g.Degree(hub))
	}
	checkIndex := func() {
		t.Helper()
		for v := range g.adj {
			p := g.pos[v]
			if p == nil {
				continue
			}
			if len(p) != len(g.adj[v]) {
				t.Fatalf("pos[%d] has %d entries, adj has %d", v, len(p), len(g.adj[v]))
			}
			for i, w := range g.adj[v] {
				if p[w] != int32(i) {
					t.Fatalf("pos[%d][%d]=%d, adj index is %d", v, w, p[w], i)
				}
			}
		}
	}
	checkIndex()
	// Remove from the middle and the end (swap-remove both regimes).
	for _, v := range []int{1, IndexThreshold + 1, 7, 2} {
		if err := g.RemoveEdge(hub, v); err != nil {
			t.Fatal(err)
		}
		if g.HasEdge(hub, v) {
			t.Fatalf("edge (0,%d) still present after removal", v)
		}
		checkIndex()
	}
	// Sticky: dropping far below the threshold keeps the hub's index.
	for v := 3; v <= IndexThreshold; v++ {
		if v == 7 {
			continue
		}
		if err := g.RemoveEdge(hub, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(hub) >= IndexThreshold {
		t.Fatalf("hub degree still %d", g.Degree(hub))
	}
	if g.pos[hub] == nil {
		t.Fatal("promotion is documented sticky but the index was dropped")
	}
	checkIndex()
}

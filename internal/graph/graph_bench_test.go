package graph

import (
	"math/rand/v2"
	"testing"
)

// Hybrid adjacency benchmarks: most vertices stay under IndexThreshold and
// are served by linear scans of the adjacency slice; a few hubs are
// promoted to map indexes. The fixture builds a star-plus-ring shape so
// both regimes are exercised: vertex 0 is a hub (degree >> threshold),
// vertices 1..n are low degree.

func hybridFixture(n int) *Undirected {
	g := New(n + 1)
	for v := 1; v <= n; v++ {
		if err := g.AddEdge(0, v); err != nil { // hub arcs
			panic(err)
		}
		w := v%n + 1
		if v != w && !g.HasEdge(v, w) { // low-degree ring arcs
			if err := g.AddEdge(v, w); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func BenchmarkHybridAdjacencyHasEdge(b *testing.B) {
	g := hybridFixture(4096)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := rng.IntN(4096) + 1
		v := rng.IntN(4096) + 1
		_ = g.HasEdge(u, v) // low-degree vs low-degree: scan path
		_ = g.HasEdge(0, u) // hub vs low-degree: map path
	}
}

func BenchmarkHybridAdjacencyAddRemove(b *testing.B) {
	g := hybridFixture(4096)
	rng := rand.New(rand.NewPCG(2, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := rng.IntN(4096) + 1
		v := rng.IntN(4096) + 1
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if err := g.RemoveEdge(u, v); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHybridAdjacencyHubChurn hammers the promoted (map) path.
func BenchmarkHybridAdjacencyHubChurn(b *testing.B) {
	g := hybridFixture(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i%4096 + 1
		if err := g.RemoveEdge(0, v); err != nil {
			b.Fatal(err)
		}
		if err := g.AddEdge(0, v); err != nil {
			b.Fatal(err)
		}
	}
}

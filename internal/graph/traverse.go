package graph

// BFS runs a breadth-first search from src, invoking visit for every reached
// vertex (including src). If visit returns false the search stops early.
// eligible, when non-nil, restricts the search to vertices for which it
// returns true (src is always visited).
func (g *Undirected) BFS(src int, eligible func(v int) bool, visit func(v int) bool) {
	if !g.HasVertex(src) {
		return
	}
	seen := make(map[int]bool, 16)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !visit(v) {
			return
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if seen[w] {
				continue
			}
			if eligible != nil && !eligible(w) {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
}

// ConnectedComponents labels every vertex with a component id in [0, k) and
// returns the labels along with the number of components k. Isolated
// vertices form singleton components.
func (g *Undirected) ConnectedComponents() (label []int, k int) {
	n := g.NumVertices()
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = k
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w32 := range g.Neighbors(v) {
				w := int(w32)
				if label[w] == -1 {
					label[w] = k
					stack = append(stack, w)
				}
			}
		}
		k++
	}
	return label, k
}

// Package graph provides the dynamic undirected graph substrate used by all
// core-maintenance algorithms in this repository.
//
// Vertices are dense non-negative integers. The adjacency representation is a
// slice per vertex plus a hybrid position index: below a small degree
// threshold membership and removal use a branch-predictable linear scan of
// the adjacency slice, and only hub vertices that cross the threshold are
// promoted to a map index. Power-law streams therefore allocate maps for a
// tiny fraction of vertices while keeping O(1) expected insertion, removal,
// and membership tests, allocation-free neighbor iteration, and
// deterministic (insertion, perturbed by swap-removes) order.
package graph

import (
	"errors"
	"fmt"
)

// ErrSelfLoop is returned when an edge (v, v) is added.
var ErrSelfLoop = errors.New("graph: self loops are not supported")

// ErrDuplicateEdge is returned when an already-present edge is added.
var ErrDuplicateEdge = errors.New("graph: edge already present")

// ErrMissingEdge is returned when a non-existent edge is removed.
var ErrMissingEdge = errors.New("graph: edge not present")

// ErrVertexRange is returned for negative vertex identifiers.
var ErrVertexRange = errors.New("graph: vertex id must be non-negative")

// IndexThreshold is the degree at which a vertex's adjacency gains a map
// position index. Below it, HasEdge/removeArc linearly scan the adjacency
// slice — a handful of contiguous int32 compares, cheaper than a map probe
// and entirely allocation-free. Promotion is sticky: once a hub, always a
// hub, so a vertex oscillating around the threshold never thrashes
// (re)building its index.
const IndexThreshold = 32

// Undirected is a mutable simple undirected graph (no self loops, no
// parallel edges). The zero value is an empty graph ready to use.
//
// Undirected is not safe for concurrent mutation; wrap it (or use the public
// kcore API) if you need synchronization.
type Undirected struct {
	adj [][]int32         // adjacency lists, insertion ordered
	pos []map[int32]int32 // pos[v][w] = index of w in adj[v]; nil until v crosses IndexThreshold
	m   int               // number of edges
}

// New returns a graph with n isolated vertices 0..n-1.
func New(n int) *Undirected {
	g := &Undirected{}
	g.EnsureVertex(n - 1)
	return g
}

// NumVertices reports the number of vertices (max vertex id + 1).
func (g *Undirected) NumVertices() int { return len(g.adj) }

// NumEdges reports the number of edges.
func (g *Undirected) NumEdges() int { return g.m }

// EnsureVertex grows the vertex set so that v is a valid vertex.
// It is a no-op when v already exists or is negative.
func (g *Undirected) EnsureVertex(v int) {
	for len(g.adj) <= v {
		g.adj = append(g.adj, nil)
		g.pos = append(g.pos, nil)
	}
}

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Undirected) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.pos = append(g.pos, nil)
	return len(g.adj) - 1
}

// HasVertex reports whether v is a valid vertex id.
func (g *Undirected) HasVertex(v int) bool { return v >= 0 && v < len(g.adj) }

// Degree returns the degree of v (0 for unknown vertices).
func (g *Undirected) Degree(v int) int {
	if !g.HasVertex(v) {
		return 0
	}
	return len(g.adj[v])
}

// HasEdge reports whether the edge (u, v) is present.
func (g *Undirected) HasEdge(u, v int) bool {
	if !g.HasVertex(u) || !g.HasVertex(v) || u == v {
		return false
	}
	// Arcs are mirrored, so either endpoint answers. Prefer an existing map
	// index; otherwise scan the shorter adjacency slice.
	if p := g.pos[u]; p != nil {
		_, ok := p[int32(v)]
		return ok
	}
	if p := g.pos[v]; p != nil {
		_, ok := p[int32(u)]
		return ok
	}
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	w := int32(b)
	for _, x := range g.adj[a] {
		if x == w {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u, v), growing the vertex set as
// needed. It returns ErrSelfLoop, ErrVertexRange, or ErrDuplicateEdge on
// invalid input.
func (g *Undirected) AddEdge(u, v int) error {
	if u < 0 || v < 0 {
		return ErrVertexRange
	}
	if u == v {
		return ErrSelfLoop
	}
	g.EnsureVertex(max(u, v))
	if g.HasEdge(u, v) {
		return ErrDuplicateEdge
	}
	g.addArc(u, v)
	g.addArc(v, u)
	g.m++
	return nil
}

// RemoveEdge deletes the undirected edge (u, v). It returns ErrMissingEdge
// when the edge is absent.
func (g *Undirected) RemoveEdge(u, v int) error {
	if !g.HasEdge(u, v) {
		return ErrMissingEdge
	}
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
	return nil
}

func (g *Undirected) addArc(u, v int) {
	if p := g.pos[u]; p != nil {
		p[int32(v)] = int32(len(g.adj[u]))
	}
	g.adj[u] = append(g.adj[u], int32(v))
	if g.pos[u] == nil && len(g.adj[u]) > IndexThreshold {
		g.promote(u)
	}
}

// promote builds the map position index for hub vertex u.
func (g *Undirected) promote(u int) {
	p := make(map[int32]int32, 2*len(g.adj[u]))
	for i, w := range g.adj[u] {
		p[w] = int32(i)
	}
	g.pos[u] = p
}

func (g *Undirected) removeArc(u, v int) {
	var i int32
	if p := g.pos[u]; p != nil {
		i = p[int32(v)]
	} else {
		w := int32(v)
		for j, x := range g.adj[u] {
			if x == w {
				i = int32(j)
				break
			}
		}
	}
	// Swap-remove: the last neighbor fills the vacated slot.
	last := int32(len(g.adj[u]) - 1)
	w := g.adj[u][last]
	g.adj[u][i] = w
	if p := g.pos[u]; p != nil {
		p[w] = i
		delete(p, int32(v))
	}
	g.adj[u] = g.adj[u][:last]
}

// Neighbors returns the adjacency list of v as int32 ids.
//
// Aliasing contract: the returned slice aliases the graph's internal
// storage and is valid only until the next mutation of the graph. Callers
// must not modify it, and must not add or remove edges while iterating it —
// a removal swap-moves the last neighbor into the vacated slot (reordering
// and shrinking the slice in place), and an insertion may reallocate it.
// Use AppendNeighbors for a copy that survives mutation.
func (g *Undirected) Neighbors(v int) []int32 {
	if !g.HasVertex(v) {
		return nil
	}
	return g.adj[v]
}

// AppendNeighbors appends the neighbors of v to dst and returns it. The
// result is safe against subsequent graph mutation.
func (g *Undirected) AppendNeighbors(dst []int, v int) []int {
	for _, w := range g.Neighbors(v) {
		dst = append(dst, int(w))
	}
	return dst
}

// ForEachEdge invokes fn(u, v) once per edge with u < v. Iteration order is
// deterministic given the mutation history. fn must not mutate the graph.
func (g *Undirected) ForEachEdge(fn func(u, v int)) {
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Edges returns all edges as [2]int pairs with u < v.
func (g *Undirected) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	g.ForEachEdge(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// MaxDegree returns the maximum vertex degree (0 for empty graphs).
func (g *Undirected) MaxDegree() int {
	md := 0
	for v := range g.adj {
		if len(g.adj[v]) > md {
			md = len(g.adj[v])
		}
	}
	return md
}

// AvgDegree returns 2m/n, the average degree (0 for empty graphs).
func (g *Undirected) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Clone returns a deep copy of the graph.
func (g *Undirected) Clone() *Undirected {
	c := &Undirected{
		adj: make([][]int32, len(g.adj)),
		pos: make([]map[int32]int32, len(g.pos)),
		m:   g.m,
	}
	for v := range g.adj {
		if len(g.adj[v]) > 0 {
			c.adj[v] = append([]int32(nil), g.adj[v]...)
		}
		if g.pos[v] != nil {
			c.pos[v] = make(map[int32]int32, len(g.pos[v]))
			for k, i := range g.pos[v] {
				c.pos[v][k] = i
			}
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v] true). Vertex ids are preserved; vertices outside keep become
// isolated.
func (g *Undirected) InducedSubgraph(keep []bool) *Undirected {
	s := New(g.NumVertices())
	g.ForEachEdge(func(u, v int) {
		if u < len(keep) && v < len(keep) && keep[u] && keep[v] {
			if err := s.AddEdge(u, v); err != nil {
				panic(fmt.Sprintf("graph: induced subgraph internal error: %v", err))
			}
		}
	})
	return s
}

// Equal reports whether g and h have the same vertex count and edge set.
func (g *Undirected) Equal(h *Undirected) bool {
	if g.NumVertices() != h.NumVertices() || g.NumEdges() != h.NumEdges() {
		return false
	}
	equal := true
	g.ForEachEdge(func(u, v int) {
		if !h.HasEdge(u, v) {
			equal = false
		}
	})
	return equal
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

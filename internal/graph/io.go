package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' and blank lines are ignored. Duplicate
// edges and self loops in the input are silently skipped (common in raw
// SNAP-style dumps); malformed lines are an error.
func ReadEdgeList(r io.Reader) (*Undirected, error) {
	g := &Undirected{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		if u == v {
			continue
		}
		g.EnsureVertex(max(u, v))
		if g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as a "u v" per line edge list with a
// header comment recording vertex and edge counts.
func WriteEdgeList(w io.Writer, g *Undirected) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

package decomp

import "kcore/internal/graph"

// GreedyColorByOrder colors g greedily processing vertices in the reverse
// of the given k-order (a degeneracy ordering). Because each vertex has at
// most degeneracy(g) already-colored neighbors at its turn, the result uses
// at most degeneracy+1 colors — the classic k-core application to graph
// coloring. Returns the color of every vertex and the number of colors.
func GreedyColorByOrder(g *graph.Undirected, order []int) (colors []int, numColors int) {
	n := g.NumVertices()
	colors = make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var used []bool
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		used = used[:0]
		for _, w := range g.Neighbors(v) {
			c := colors[w]
			if c < 0 {
				continue
			}
			for len(used) <= c {
				used = append(used, false)
			}
			used[c] = true
		}
		c := 0
		for c < len(used) && used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

package decomp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"kcore/internal/graph"
)

func TestGreedyColorKnown(t *testing.T) {
	// Triangle: 3 colors, all distinct.
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	dec := KOrder(g, SmallDegPlusFirst, 0)
	colors, k := GreedyColorByOrder(g, dec.Order)
	if k != 3 {
		t.Fatalf("triangle colors=%d", k)
	}
	if colors[0] == colors[1] || colors[1] == colors[2] || colors[0] == colors[2] {
		t.Fatalf("triangle coloring improper: %v", colors)
	}
	// Path: 2 colors.
	g2 := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dec2 := KOrder(g2, SmallDegPlusFirst, 0)
	_, k2 := GreedyColorByOrder(g2, dec2.Order)
	if k2 != 2 {
		t.Fatalf("path colors=%d", k2)
	}
	// Empty graph.
	colors3, k3 := GreedyColorByOrder(graph.New(2), []int{0, 1})
	if k3 != 1 || colors3[0] != 0 {
		t.Fatalf("isolated coloring k=%d colors=%v", k3, colors3)
	}
}

func TestGreedyColorRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.IntN(60)
		g := graph.New(n)
		m := rng.IntN(5 * n)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
		dec := KOrder(g, SmallDegPlusFirst, uint64(trial))
		colors, k := GreedyColorByOrder(g, dec.Order)
		// Proper coloring.
		g.ForEachEdge(func(u, v int) {
			if colors[u] == colors[v] {
				t.Fatalf("trial %d: edge (%d,%d) monochromatic", trial, u, v)
			}
		})
		// Degeneracy bound.
		if k > dec.MaxCore+1 {
			t.Fatalf("trial %d: %d colors > degeneracy+1 = %d", trial, k, dec.MaxCore+1)
		}
	}
}

func TestQuickColoringBound(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := graph.New(1)
		for _, p := range pairs {
			u, v := int(p[0])%30, int(p[1])%30
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		dec := KOrder(g, SmallDegPlusFirst, 3)
		colors, k := GreedyColorByOrder(g, dec.Order)
		ok := k <= dec.MaxCore+1
		g.ForEachEdge(func(u, v int) {
			if colors[u] == colors[v] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

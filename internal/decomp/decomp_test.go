package decomp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"kcore/internal/graph"
)

// buildGraph constructs a graph from an edge list.
func buildGraph(t testing.TB, n int, edges [][2]int) *graph.Undirected {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

// paperGraph reproduces Fig. 3 of the paper at reduced scale: a path of
// path vertices (core 1), a 2-core pentagon bridging into two 3-subcores
// (two K4s).
func paperGraph(t testing.TB, pathLen int) (*graph.Undirected, map[string][]int) {
	t.Helper()
	g := graph.New(0)
	// Path u_0..u_{pathLen-1}, core 1.
	us := make([]int, pathLen)
	for i := range us {
		us[i] = g.AddVertex()
	}
	for i := 0; i+1 < pathLen; i++ {
		mustAdd(t, g, us[i], us[i+1])
	}
	// 2-core: 5-cycle v1..v5.
	vs := make([]int, 5)
	for i := range vs {
		vs[i] = g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		mustAdd(t, g, vs[i], vs[(i+1)%5])
	}
	// Two K4s (3-cores), attached to the pentagon.
	k4a := make([]int, 4)
	k4b := make([]int, 4)
	for i := range k4a {
		k4a[i] = g.AddVertex()
	}
	for i := range k4b {
		k4b[i] = g.AddVertex()
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mustAdd(t, g, k4a[i], k4a[j])
			mustAdd(t, g, k4b[i], k4b[j])
		}
	}
	mustAdd(t, g, vs[0], k4a[0])
	mustAdd(t, g, vs[1], k4b[0])
	// Path attaches to pentagon.
	mustAdd(t, g, us[pathLen-1], vs[2])
	return g, map[string][]int{"path": us, "penta": vs, "k4a": k4a, "k4b": k4b}
}

func mustAdd(t testing.TB, g *graph.Undirected, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestCoresKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  []int
	}{
		{"empty", 0, nil, []int{}},
		{"isolated", 3, nil, []int{0, 0, 0}},
		{"single-edge", 2, [][2]int{{0, 1}}, []int{1, 1}},
		{"path", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{1, 1, 1, 1}},
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, []int{2, 2, 2}},
		{"triangle-with-tail", 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, []int{2, 2, 2, 1}},
		{"k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, []int{3, 3, 3, 3}},
		{"star", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, []int{1, 1, 1, 1, 1}},
		{"two-triangles-bridge", 6,
			[][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}},
			[]int{2, 2, 2, 2, 2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildGraph(t, tc.n, tc.edges)
			got := Cores(g)
			for v := range tc.want {
				if got[v] != tc.want[v] {
					t.Fatalf("core(%d)=%d want %d (all: %v)", v, got[v], tc.want[v], got)
				}
			}
		})
	}
}

func TestCoresPaperGraph(t *testing.T) {
	g, parts := paperGraph(t, 30)
	core := Cores(g)
	for _, u := range parts["path"] {
		if core[u] != 1 {
			t.Fatalf("path vertex %d core=%d want 1", u, core[u])
		}
	}
	for _, v := range parts["penta"] {
		if core[v] != 2 {
			t.Fatalf("pentagon vertex %d core=%d want 2", v, core[v])
		}
	}
	for _, v := range append(parts["k4a"], parts["k4b"]...) {
		if core[v] != 3 {
			t.Fatalf("K4 vertex %d core=%d want 3", v, core[v])
		}
	}
	if Degeneracy(g) != 3 {
		t.Fatalf("degeneracy=%d want 3", Degeneracy(g))
	}
}

// brute computes core numbers by the definitional peeling, independent of
// the bucket implementation.
func brute(g *graph.Undirected) []int {
	n := g.NumVertices()
	core := make([]int, n)
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	for k := 1; ; k++ {
		changed := true
		any := false
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] < k {
					removed[v] = true
					core[v] = k - 1
					changed = true
					for _, w := range g.Neighbors(v) {
						if !removed[w] {
							deg[w]--
						}
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] {
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestCoresAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(40)
		g := graph.New(n)
		m := rng.IntN(3 * n)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
		want := brute(g)
		got := Cores(g)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d: core(%d)=%d want %d", trial, v, got[v], want[v])
			}
		}
	}
}

// validKOrder checks Lemma 5.1 directly on the decomposition output: the
// recorded order must be a valid removal sequence of Algorithm 1, i.e.
// peeling vertices in that order, each vertex's remaining degree at its
// removal equals DegPlus and is <= its core number (and cores match).
func validKOrder(t *testing.T, g *graph.Undirected, dec *Decomposition) {
	t.Helper()
	n := g.NumVertices()
	if len(dec.Order) != n {
		t.Fatalf("order has %d vertices, want %d", len(dec.Order), n)
	}
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	prevCore := 0
	for i, v := range dec.Order {
		if dec.Core[v] < prevCore {
			t.Fatalf("order position %d: core decreases (%d after %d)", i, dec.Core[v], prevCore)
		}
		prevCore = dec.Core[v]
		if deg[v] > dec.Core[v] {
			t.Fatalf("order position %d (vertex %d): remaining degree %d exceeds core %d",
				i, v, deg[v], dec.Core[v])
		}
		if deg[v] != dec.DegPlus[v] {
			t.Fatalf("vertex %d: DegPlus=%d but remaining degree %d", v, dec.DegPlus[v], deg[v])
		}
		if dec.Pos[v] != i {
			t.Fatalf("Pos[%d]=%d want %d", v, dec.Pos[v], i)
		}
		removed[v] = true
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
}

func TestKOrderValidAllHeuristics(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(50)
		g := graph.New(n)
		m := rng.IntN(4 * n)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
		want := Cores(g)
		for _, h := range []Heuristic{SmallDegPlusFirst, LargeDegPlusFirst, RandomDegPlusFirst} {
			dec := KOrder(g, h, uint64(trial))
			for v := 0; v < n; v++ {
				if dec.Core[v] != want[v] {
					t.Fatalf("%v trial %d: core(%d)=%d want %d", h, trial, v, dec.Core[v], want[v])
				}
			}
			validKOrder(t, g, dec)
		}
	}
}

func TestKOrderRandomHeuristicDeterminism(t *testing.T) {
	g := buildGraph(t, 30, nil)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 80; i++ {
		u, v := rng.IntN(30), rng.IntN(30)
		if u != v && !g.HasEdge(u, v) {
			mustAdd(t, g, u, v)
		}
	}
	a := KOrder(g, RandomDegPlusFirst, 7)
	b := KOrder(g, RandomDegPlusFirst, 7)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("random heuristic not deterministic for fixed seed")
		}
	}
	c := KOrder(g, RandomDegPlusFirst, 8)
	same := true
	for i := range a.Order {
		if a.Order[i] != c.Order[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical random orders (suspicious)")
	}
}

func TestHeuristicString(t *testing.T) {
	if SmallDegPlusFirst.String() != "small deg+ first" ||
		LargeDegPlusFirst.String() != "large deg+ first" ||
		RandomDegPlusFirst.String() != "random deg+ first" ||
		Heuristic(9).String() != "unknown" {
		t.Fatal("Heuristic.String broken")
	}
}

func TestKCoreVertices(t *testing.T) {
	core := []int{0, 1, 2, 3, 2}
	got := KCoreVertices(core, 2)
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("KCoreVertices=%v", got)
	}
	if KCoreVertices(core, 9) != nil {
		t.Fatal("expected empty k-core")
	}
}

func TestComputeMCDAndPCD(t *testing.T) {
	// Fig. 3 path structure: mcd/pcd values from the paper's example.
	// Path u0-u1-...-u5 plus u0 attached to a triangle (2-core).
	g := graph.New(0)
	tri := []int{g.AddVertex(), g.AddVertex(), g.AddVertex()}
	mustAdd(t, g, tri[0], tri[1])
	mustAdd(t, g, tri[1], tri[2])
	mustAdd(t, g, tri[0], tri[2])
	u0 := g.AddVertex()
	u1 := g.AddVertex()
	u2 := g.AddVertex()
	mustAdd(t, g, tri[0], u0)
	mustAdd(t, g, u0, u1)
	mustAdd(t, g, u1, u2)
	core := Cores(g)
	mcd := ComputeMCD(g, core)
	pcd := ComputePCD(g, core, mcd)
	// u0: neighbors tri[0] (core 2 >= 1) and u1 (core 1 >= 1) -> mcd 2.
	if mcd[u0] != 2 {
		t.Fatalf("mcd(u0)=%d want 2", mcd[u0])
	}
	// u2: neighbor u1 core 1 -> mcd 1. u1: neighbors u0,u2 -> mcd 2.
	if mcd[u2] != 1 || mcd[u1] != 2 {
		t.Fatalf("mcd(u1)=%d mcd(u2)=%d", mcd[u1], mcd[u2])
	}
	// pcd(u1): u0 qualifies (mcd 2 > core 1); u2 has mcd=core=1, excluded.
	if pcd[u1] != 1 {
		t.Fatalf("pcd(u1)=%d want 1", pcd[u1])
	}
	// Triangle vertices: all mcd=2=core, so same-core neighbors don't count.
	if pcd[tri[1]] != 0 {
		t.Fatalf("pcd(tri1)=%d want 0", pcd[tri[1]])
	}
	// tri[0] has neighbor u0 with core 1 < 2: excluded. pcd 0.
	if pcd[tri[0]] != 0 {
		t.Fatalf("pcd(tri0)=%d want 0", pcd[tri[0]])
	}
}

func TestSubcores(t *testing.T) {
	g, parts := paperGraph(t, 10)
	core := Cores(g)
	label, sizes := Subcores(g, core)
	// Path is one 1-subcore of size 10; pentagon one 2-subcore of size 5;
	// two 3-subcores of size 4.
	if sizes[label[parts["path"][0]]] != 10 {
		t.Fatalf("path subcore size=%d", sizes[label[parts["path"][0]]])
	}
	if sizes[label[parts["penta"][0]]] != 5 {
		t.Fatalf("pentagon subcore size=%d", sizes[label[parts["penta"][0]]])
	}
	if sizes[label[parts["k4a"][0]]] != 4 || sizes[label[parts["k4b"][0]]] != 4 {
		t.Fatal("k4 subcore sizes wrong")
	}
	if label[parts["k4a"][0]] == label[parts["k4b"][0]] {
		t.Fatal("distinct 3-subcores merged")
	}
	sz := SubcoreSizes(g, core)
	if sz[parts["path"][3]] != 10 {
		t.Fatalf("SubcoreSizes path=%d", sz[parts["path"][3]])
	}
}

func TestPureCoreSizes(t *testing.T) {
	// Path graph: interior vertices have mcd 2 > core 1 (eligible); the two
	// endpoints have mcd 1 = core (ineligible).
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	core := Cores(g)
	mcd := ComputeMCD(g, core)
	pc := PureCoreSizes(g, core, mcd)
	// Eligible: 1,2,3 forming one component of size 3.
	// pc(0) = {0} + comp{1,2,3} = 4; pc(2) = comp = 3; pc(4) = 4.
	if pc[0] != 4 || pc[4] != 4 {
		t.Fatalf("pc endpoints = %d,%d want 4,4", pc[0], pc[4])
	}
	if pc[1] != 3 || pc[2] != 3 || pc[3] != 3 {
		t.Fatalf("pc interior = %v", pc[1:4])
	}
	// Triangle: nobody eligible, pc(v)=1.
	g2 := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	core2 := Cores(g2)
	mcd2 := ComputeMCD(g2, core2)
	pc2 := PureCoreSizes(g2, core2, mcd2)
	for v, s := range pc2 {
		if s != 1 {
			t.Fatalf("triangle pc(%d)=%d want 1", v, s)
		}
	}
}

func TestOrderCoreSize(t *testing.T) {
	// Path 0-1-2-3: with the k-order being a removal order, the last vertex
	// in the order has oc of size 1 and the first can reach further.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dec := KOrder(g, SmallDegPlusFirst, 0)
	last := dec.Order[len(dec.Order)-1]
	if s := OrderCoreSize(g, dec, last); s != 1 {
		t.Fatalf("oc(last)=%d want 1", s)
	}
	for v := 0; v < 4; v++ {
		s := OrderCoreSize(g, dec, v)
		if s < 1 || s > 4 {
			t.Fatalf("oc(%d)=%d out of range", v, s)
		}
	}
	samples := SampleOrderCoreSizes(g, dec, 10, 1)
	if len(samples) != 10 {
		t.Fatalf("samples=%d", len(samples))
	}
	for _, s := range samples {
		if s < 1 || s > 4 {
			t.Fatalf("sampled oc=%d out of range", s)
		}
	}
	if SampleOrderCoreSizes(graph.New(0), &Decomposition{}, 5, 1) != nil {
		t.Fatal("sampling empty graph should return nil")
	}
}

func TestValidate(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	core := Cores(g)
	if err := Validate(g, core); err != nil {
		t.Fatal(err)
	}
	core[1] = 0
	if err := Validate(g, core); err == nil {
		t.Fatal("Validate accepted wrong cores")
	}
	if err := Validate(g, []int{2}); err == nil {
		t.Fatal("Validate accepted short slice")
	}
}

func TestQuickCoreLeqDegree(t *testing.T) {
	// Property: core(v) <= deg(v) and core(v) <= degeneracy for random graphs.
	f := func(pairs [][2]uint8) bool {
		g := graph.New(1)
		for _, p := range pairs {
			u, v := int(p[0])%30, int(p[1])%30
			if u != v && !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		dec := KOrder(g, SmallDegPlusFirst, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if dec.Core[v] > g.Degree(v) || dec.Core[v] > dec.MaxCore {
				return false
			}
			if dec.DegPlus[v] > dec.Core[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMCDAtLeastCore(t *testing.T) {
	// Property from Section IV: mcd(v) >= core(v), pcd(v) <= mcd(v).
	f := func(pairs [][2]uint8) bool {
		g := graph.New(1)
		for _, p := range pairs {
			u, v := int(p[0])%25, int(p[1])%25
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
		core := Cores(g)
		mcd := ComputeMCD(g, core)
		pcd := ComputePCD(g, core, mcd)
		for v := 0; v < g.NumVertices(); v++ {
			if mcd[v] < core[v] || pcd[v] > mcd[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

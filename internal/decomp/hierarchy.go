package decomp

import (
	"fmt"
	"sort"

	"kcore/internal/graph"
)

// CoreComponent is one connected component of a k-core: the unit of the
// core hierarchy. Components are nested: every (k+1)-core component lies
// inside exactly one k-core component.
type CoreComponent struct {
	// K is the core level of this component.
	K int
	// Vertices lists the component members (sorted ascending).
	Vertices []int
	// Parent is the index (in Hierarchy.Components) of the enclosing
	// (K-1)-core component, or -1 at the top level (K == minimum level).
	Parent int
	// Children are indices of the enclosed (K+1)-core components.
	Children []int
}

// Hierarchy is the full nesting tree of k-core components of a graph — the
// structure behind core-based community search and graph visualization
// (the applications the paper's introduction cites).
type Hierarchy struct {
	// Components lists all components, grouped by increasing K.
	Components []CoreComponent
	// leaf[v] is the index of the deepest (highest-K) component containing
	// v, i.e. the component of v's own core level.
	leaf []int
}

// BuildHierarchy computes the core hierarchy of g given its core numbers.
// Cost: O((m + n) * maxCore) in the worst case; levels with no vertices are
// skipped.
func BuildHierarchy(g *graph.Undirected, core []int) *Hierarchy {
	n := g.NumVertices()
	h := &Hierarchy{leaf: make([]int, n)}
	for i := range h.leaf {
		h.leaf[i] = -1
	}
	if n == 0 {
		return h
	}
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	// prevComp[v] = component index of v at the previous (lower) level.
	prevComp := make([]int, n)
	comp := make([]int, n)
	for i := range prevComp {
		prevComp[i] = -1
	}
	for k := 0; k <= maxCore; k++ {
		for i := range comp {
			comp[i] = -1
		}
		var stack []int
		for s := 0; s < n; s++ {
			if core[s] < k || comp[s] != -1 {
				continue
			}
			idx := len(h.Components)
			c := CoreComponent{K: k, Parent: -1}
			if k > 0 {
				c.Parent = prevComp[s]
			}
			comp[s] = idx
			stack = append(stack[:0], s)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				c.Vertices = append(c.Vertices, v)
				if core[v] == k {
					h.leaf[v] = idx
				}
				for _, w32 := range g.Neighbors(v) {
					w := int(w32)
					if core[w] >= k && comp[w] == -1 {
						comp[w] = idx
						stack = append(stack, w)
					}
				}
			}
			sort.Ints(c.Vertices)
			h.Components = append(h.Components, c)
			if c.Parent >= 0 {
				h.Components[c.Parent].Children = append(h.Components[c.Parent].Children, idx)
			}
		}
		copy(prevComp, comp)
	}
	return h
}

// Component returns the component at index i.
func (h *Hierarchy) Component(i int) (CoreComponent, error) {
	if i < 0 || i >= len(h.Components) {
		return CoreComponent{}, fmt.Errorf("decomp: component index %d out of range [0,%d)", i, len(h.Components))
	}
	return h.Components[i], nil
}

// Leaf returns the index of the deepest component containing v, or -1 for
// unknown vertices.
func (h *Hierarchy) Leaf(v int) int {
	if v < 0 || v >= len(h.leaf) {
		return -1
	}
	return h.leaf[v]
}

// CommunityOf answers a core-based community search query: the connected
// k-core component containing the query vertex, for the largest k' <= k
// at which the vertex participates. With k greater than core(v) it returns
// v's deepest community; with small k it returns the broader component.
// Returns nil when v is unknown or isolated at the requested level.
func (h *Hierarchy) CommunityOf(v, k int) []int {
	idx := h.Leaf(v)
	if idx < 0 {
		return nil
	}
	// Walk up until the component level is <= k.
	for idx >= 0 && h.Components[idx].K > k {
		idx = h.Components[idx].Parent
	}
	if idx < 0 {
		return nil
	}
	out := make([]int, len(h.Components[idx].Vertices))
	copy(out, h.Components[idx].Vertices)
	return out
}

// LevelComponents returns the indices of all components at level k, in
// construction order.
func (h *Hierarchy) LevelComponents(k int) []int {
	var out []int
	for i, c := range h.Components {
		if c.K == k {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks hierarchy invariants: component nesting, vertex
// membership, and that each component is a maximal connected k-core piece.
// Test helper.
func (h *Hierarchy) Validate(g *graph.Undirected, core []int) error {
	for i, c := range h.Components {
		if len(c.Vertices) == 0 {
			return fmt.Errorf("decomp: component %d empty", i)
		}
		for _, v := range c.Vertices {
			if core[v] < c.K {
				return fmt.Errorf("decomp: component %d (K=%d) contains vertex %d with core %d",
					i, c.K, v, core[v])
			}
		}
		if c.Parent >= 0 {
			p := h.Components[c.Parent]
			if p.K != c.K-1 {
				return fmt.Errorf("decomp: component %d parent level %d, want %d", i, p.K, c.K-1)
			}
			// Every member must be inside the parent.
			inParent := map[int]bool{}
			for _, v := range p.Vertices {
				inParent[v] = true
			}
			for _, v := range c.Vertices {
				if !inParent[v] {
					return fmt.Errorf("decomp: component %d vertex %d missing from parent", i, v)
				}
			}
		} else if c.K > 0 {
			return fmt.Errorf("decomp: component %d at level %d has no parent", i, c.K)
		}
	}
	return nil
}

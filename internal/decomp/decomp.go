// Package decomp implements static core decomposition (Algorithm 1 of the
// paper, the O(m+n) algorithm of Batagelj and Zaversnik), generation of the
// initial k-order under the paper's three heuristics (Section VI), and the
// subcore / pure-core / order-core statistics of Figure 5.
package decomp

import (
	"fmt"
	"math/rand/v2"

	"kcore/internal/graph"
)

// Heuristic selects the tie-breaking rule used by k-order generation when
// several vertices are removable (Section VI, Fig. 9).
type Heuristic int

const (
	// SmallDegPlusFirst removes a removable vertex of minimum remaining
	// degree first. This is the paper's recommended heuristic.
	SmallDegPlusFirst Heuristic = iota
	// LargeDegPlusFirst removes a removable vertex of maximum remaining
	// degree first.
	LargeDegPlusFirst
	// RandomDegPlusFirst removes a removable vertex chosen uniformly at
	// random.
	RandomDegPlusFirst
)

// String returns the paper's name for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case SmallDegPlusFirst:
		return "small deg+ first"
	case LargeDegPlusFirst:
		return "large deg+ first"
	case RandomDegPlusFirst:
		return "random deg+ first"
	default:
		return "unknown"
	}
}

// Decomposition is the result of running core decomposition while recording
// the removal order (the initial k-order) and the remaining degree of each
// vertex at removal time (its initial deg+).
type Decomposition struct {
	// Core holds the core number of every vertex.
	Core []int
	// Order lists all vertices in k-order (removal order of Algorithm 1).
	Order []int
	// Pos is the inverse of Order: Pos[Order[i]] = i.
	Pos []int
	// DegPlus holds deg+(v): the remaining degree of v when removed.
	DegPlus []int
	// MaxCore is the degeneracy of the graph (max core number).
	MaxCore int
}

// Cores computes the core number of every vertex in O(m+n).
func Cores(g *graph.Undirected) []int {
	return KOrder(g, SmallDegPlusFirst, 0).Core
}

// Degeneracy returns the maximum core number of g.
func Degeneracy(g *graph.Undirected) int {
	return KOrder(g, SmallDegPlusFirst, 0).MaxCore
}

// bucketQueue is an array-of-intrusive-lists structure over vertex degrees.
type bucketQueue struct {
	head []int // head[d] = first vertex with degree d, or -1
	next []int
	prev []int
	deg  []int
}

func newBucketQueue(deg []int, maxDeg int) *bucketQueue {
	n := len(deg)
	b := &bucketQueue{
		head: make([]int, maxDeg+1),
		next: make([]int, n),
		prev: make([]int, n),
		deg:  deg,
	}
	for d := range b.head {
		b.head[d] = -1
	}
	for v := n - 1; v >= 0; v-- {
		b.push(v, deg[v])
	}
	return b
}

func (b *bucketQueue) push(v, d int) {
	b.prev[v] = -1
	b.next[v] = b.head[d]
	if b.head[d] != -1 {
		b.prev[b.head[d]] = v
	}
	b.head[d] = v
}

func (b *bucketQueue) remove(v, d int) {
	if b.prev[v] != -1 {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.head[d] = b.next[v]
	}
	if b.next[v] != -1 {
		b.prev[b.next[v]] = b.prev[v]
	}
}

// decrement moves v from bucket d to bucket d-1.
func (b *bucketQueue) decrement(v, d int) {
	b.remove(v, d)
	b.push(v, d-1)
}

// KOrder runs Algorithm 1 recording the removal order, producing an initial
// k-order, core numbers, and initial deg+ values. The heuristic decides
// which removable vertex (deg < k) is removed first; seed drives the random
// heuristic (ignored by the deterministic ones).
func KOrder(g *graph.Undirected, h Heuristic, seed uint64) *Decomposition {
	n := g.NumVertices()
	dec := &Decomposition{
		Core:    make([]int, n),
		Order:   make([]int, 0, n),
		Pos:     make([]int, n),
		DegPlus: make([]int, n),
	}
	if n == 0 {
		return dec
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	bq := newBucketQueue(deg, maxDeg)
	removed := make([]bool, n)

	var rng *rand.Rand
	var pool []int
	var inPool []bool
	if h == RandomDegPlusFirst {
		rng = rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5))
		inPool = make([]bool, n)
	}

	// selectVictim returns a vertex with deg < k per heuristic, or -1.
	k := 1
	minCursor := 0
	selectVictim := func() int {
		switch h {
		case SmallDegPlusFirst:
			for minCursor < k {
				if v := bq.head[minCursor]; v != -1 {
					return v
				}
				minCursor++
			}
			return -1
		case LargeDegPlusFirst:
			top := k - 1
			if top > maxDeg {
				top = maxDeg
			}
			for d := top; d >= 0; d-- {
				if v := bq.head[d]; v != -1 {
					return v
				}
			}
			return -1
		default: // RandomDegPlusFirst
			for len(pool) > 0 {
				i := rng.IntN(len(pool))
				v := pool[i]
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				inPool[v] = false
				if !removed[v] && deg[v] < k {
					return v
				}
			}
			return -1
		}
	}
	// addCandidates pushes bucket contents of degree d into the random pool.
	addCandidates := func(d int) {
		if h != RandomDegPlusFirst || d > maxDeg {
			return
		}
		for v := bq.head[d]; v != -1; v = bq.next[v] {
			if !inPool[v] {
				inPool[v] = true
				pool = append(pool, v)
			}
		}
	}
	if h == RandomDegPlusFirst {
		addCandidates(0)
	}

	for len(dec.Order) < n {
		u := selectVictim()
		if u == -1 {
			// No vertex with deg < k remains: move to the next core level.
			addCandidates(k)
			k++
			continue
		}
		removed[u] = true
		bq.remove(u, deg[u])
		dec.Core[u] = k - 1
		dec.DegPlus[u] = deg[u]
		dec.Pos[u] = len(dec.Order)
		dec.Order = append(dec.Order, u)
		if k-1 > dec.MaxCore {
			dec.MaxCore = k - 1
		}
		for _, w32 := range g.Neighbors(u) {
			w := int(w32)
			if removed[w] {
				continue
			}
			bq.decrement(w, deg[w])
			deg[w]--
			if deg[w] < minCursor {
				minCursor = deg[w]
			}
			if h == RandomDegPlusFirst && deg[w] < k && !inPool[w] {
				inPool[w] = true
				pool = append(pool, w)
			}
		}
	}
	return dec
}

// KCoreVertices returns the vertices of the k-core given core numbers.
func KCoreVertices(core []int, k int) []int {
	var out []int
	for v, c := range core {
		if c >= k {
			out = append(out, v)
		}
	}
	return out
}

// ComputeMCD returns mcd(v) = |{w in nbr(v): core(w) >= core(v)}| for every
// vertex.
func ComputeMCD(g *graph.Undirected, core []int) []int {
	n := g.NumVertices()
	mcd := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if core[w] >= core[v] {
				mcd[v]++
			}
		}
	}
	return mcd
}

// ComputePCD returns pcd(v) = |{w in nbr(v): core(w) > core(v) or
// (core(w) == core(v) and mcd(w) > core(w))}| for every vertex.
func ComputePCD(g *graph.Undirected, core, mcd []int) []int {
	n := g.NumVertices()
	pcd := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if core[w] > core[v] || (core[w] == core[v] && mcd[w] > core[w]) {
				pcd[v]++
			}
		}
	}
	return pcd
}

// Validate checks that core is a correct core decomposition of g by
// recomputation. Test helper exported for cross-package oracles.
func Validate(g *graph.Undirected, core []int) error {
	want := Cores(g)
	if len(core) < len(want) {
		return fmt.Errorf("decomp: core slice has %d entries, graph has %d vertices", len(core), len(want))
	}
	for v, c := range want {
		if core[v] != c {
			return fmt.Errorf("decomp: core(%d) = %d, want %d", v, core[v], c)
		}
	}
	return nil
}

package decomp

import (
	"math/rand/v2"
	"testing"

	"kcore/internal/graph"
)

func TestHierarchyPaperGraph(t *testing.T) {
	g, parts := paperGraph(t, 12)
	core := Cores(g)
	h := BuildHierarchy(g, core)
	if err := h.Validate(g, core); err != nil {
		t.Fatal(err)
	}
	// Level 3 must have exactly the two K4 components.
	l3 := h.LevelComponents(3)
	if len(l3) != 2 {
		t.Fatalf("level-3 components = %d, want 2", len(l3))
	}
	for _, idx := range l3 {
		c, err := h.Component(idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Vertices) != 4 {
			t.Fatalf("3-core component size %d, want 4", len(c.Vertices))
		}
	}
	// The pentagon belongs to a 2-core component that contains both K4s
	// (they hang off the pentagon).
	penta := parts["penta"][0]
	comm2 := h.CommunityOf(penta, 2)
	if len(comm2) != 5+4+4 {
		t.Fatalf("2-community of pentagon has %d vertices, want 13", len(comm2))
	}
	// Community search at the K4's own level returns only the K4.
	k4v := parts["k4a"][0]
	comm3 := h.CommunityOf(k4v, 3)
	if len(comm3) != 4 {
		t.Fatalf("3-community of K4 vertex = %v", comm3)
	}
	// Asking for a higher k than the vertex participates in returns its
	// deepest community.
	commHigh := h.CommunityOf(k4v, 99)
	if len(commHigh) != 4 {
		t.Fatalf("deep community = %v", commHigh)
	}
	// A path vertex at k=0 sits in the whole connected graph.
	comm0 := h.CommunityOf(parts["path"][0], 0)
	if len(comm0) != g.NumVertices() {
		t.Fatalf("0-community size %d, want %d", len(comm0), g.NumVertices())
	}
}

func TestHierarchyEdgeCases(t *testing.T) {
	// Empty graph.
	h := BuildHierarchy(graph.New(0), nil)
	if len(h.Components) != 0 {
		t.Fatal("empty graph should have no components")
	}
	if h.Leaf(0) != -1 || h.CommunityOf(0, 1) != nil {
		t.Fatal("queries on empty hierarchy should be negative")
	}
	// Isolated vertices: each is its own 0-core component.
	g := graph.New(3)
	core := Cores(g)
	h = BuildHierarchy(g, core)
	if len(h.Components) != 3 {
		t.Fatalf("components = %d, want 3", len(h.Components))
	}
	if err := h.Validate(g, core); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Component(99); err == nil {
		t.Fatal("out-of-range component should error")
	}
	if h.Leaf(-1) != -1 {
		t.Fatal("negative vertex leaf")
	}
}

func TestHierarchyRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.IntN(60)
		g := graph.New(n)
		m := rng.IntN(4 * n)
		for i := 0; i < m; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
		core := Cores(g)
		h := BuildHierarchy(g, core)
		if err := h.Validate(g, core); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Leaf component of every vertex has the vertex's core level and
		// contains it.
		for v := 0; v < n; v++ {
			idx := h.Leaf(v)
			if idx < 0 {
				t.Fatalf("trial %d: vertex %d has no leaf", trial, v)
			}
			c := h.Components[idx]
			if c.K != core[v] {
				t.Fatalf("trial %d: leaf level %d != core %d", trial, c.K, core[v])
			}
			found := false
			for _, w := range c.Vertices {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: leaf of %d does not contain it", trial, v)
			}
		}
		// CommunityOf(v, core(v)) is exactly the connected k-core piece:
		// verify connectivity and degree bound within the community.
		for probe := 0; probe < 5; probe++ {
			v := rng.IntN(n)
			k := core[v]
			comm := h.CommunityOf(v, k)
			inComm := map[int]bool{}
			for _, w := range comm {
				inComm[w] = true
			}
			for _, w := range comm {
				deg := 0
				for _, z := range g.Neighbors(w) {
					if inComm[int(z)] {
						deg++
					}
				}
				if deg < k {
					t.Fatalf("trial %d: community member %d has internal degree %d < k=%d",
						trial, w, deg, k)
				}
			}
		}
	}
}

package decomp

import (
	"math/rand/v2"

	"kcore/internal/graph"
)

// Subcores labels every vertex with the id of its subcore — the maximal
// connected set of vertices sharing its core number (Section III) — and
// returns the size of each subcore.
func Subcores(g *graph.Undirected, core []int) (label []int, sizes []int) {
	n := g.NumVertices()
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		id := len(sizes)
		sizes = append(sizes, 0)
		label[s] = id
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sizes[id]++
			for _, w32 := range g.Neighbors(v) {
				w := int(w32)
				if label[w] == -1 && core[w] == core[v] {
					label[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return label, sizes
}

// SubcoreSizes returns |sc(v)| for every vertex.
func SubcoreSizes(g *graph.Undirected, core []int) []int {
	label, sizes := Subcores(g, core)
	out := make([]int, len(label))
	for v, id := range label {
		out[v] = sizes[id]
	}
	return out
}

// PureCoreSizes returns |pc(v)| for every vertex (Definition 4.1):
// pc(v) = {v} plus the maximal set PC of vertices w with core(w) = core(v)
// and mcd(w) > core(w) such that G({v} union PC) is connected.
//
// The eligible vertices (mcd > core) are decomposed into connected
// components per core level; pc(v) is then {v} plus the union of the
// eligible components touching v (v connects components that are otherwise
// disjoint).
func PureCoreSizes(g *graph.Undirected, core, mcd []int) []int {
	n := g.NumVertices()
	eligible := make([]bool, n)
	for v := 0; v < n; v++ {
		eligible[v] = mcd[v] > core[v]
	}
	// Components of the eligible subgraph restricted to equal-core edges.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var stack []int
	for s := 0; s < n; s++ {
		if !eligible[s] || comp[s] != -1 {
			continue
		}
		id := len(sizes)
		sizes = append(sizes, 0)
		comp[s] = id
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sizes[id]++
			for _, w32 := range g.Neighbors(v) {
				w := int(w32)
				if eligible[w] && comp[w] == -1 && core[w] == core[v] {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	out := make([]int, n)
	var touch []int
	for v := 0; v < n; v++ {
		touch = touch[:0]
		if eligible[v] {
			touch = append(touch, comp[v])
		}
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if eligible[w] && core[w] == core[v] {
				touch = append(touch, comp[w])
			}
		}
		total := 0
		seen := map[int]bool{}
		for _, id := range touch {
			if !seen[id] {
				seen[id] = true
				total += sizes[id]
			}
		}
		if eligible[v] {
			out[v] = total // v is inside one of the components
		} else {
			out[v] = total + 1
		}
	}
	return out
}

// OrderCoreSize returns |oc(u)| (Definition 5.4): the number of vertices
// reachable from u along paths that stay within core(u)'s level and move
// strictly forward in the k-order.
func OrderCoreSize(g *graph.Undirected, dec *Decomposition, u int) int {
	seen := map[int]bool{u: true}
	stack := []int{u}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			if !seen[w] && dec.Core[w] == dec.Core[u] && dec.Pos[v] < dec.Pos[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen)
}

// SampleOrderCoreSizes estimates the distribution of |oc(u)| on a uniform
// sample of vertices (exact per-vertex computation is Theta(nm); the paper
// reports a distribution, for which sampling suffices — see DESIGN.md §7).
func SampleOrderCoreSizes(g *graph.Undirected, dec *Decomposition, samples int, seed uint64) []int {
	n := g.NumVertices()
	if n == 0 || samples <= 0 {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x517cc1b727220a95))
	out := make([]int, 0, samples)
	for i := 0; i < samples; i++ {
		out = append(out, OrderCoreSize(g, dec, rng.IntN(n)))
	}
	return out
}

package kcore

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// TestApplyHookObservesBatches: the hook sees every applied batch's
// surviving updates and final seq, in apply order, including coalescing and
// the single-update convenience paths.
func TestApplyHookObservesBatches(t *testing.T) {
	e := NewEngine()
	type logged struct {
		seq     uint64
		updates []Update
	}
	var log []logged
	e.SetApplyHook(func(rec AppliedBatch) error {
		log = append(log, logged{rec.Seq, slices.Clone(rec.Updates)})
		return nil
	})

	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Batch with a self-annihilating pair: only survivors reach the hook.
	if _, err := e.Apply(Batch{Add(1, 2), Add(5, 6), Remove(1, 2), Add(0, 2)}); err != nil {
		t.Fatal(err)
	}
	// Fully coalesced batch: nothing applied, hook not called.
	if _, err := e.Apply(Batch{Add(7, 8), Remove(7, 8)}); err != nil {
		t.Fatal(err)
	}

	want := []logged{
		{1, []Update{Add(0, 1)}},
		{3, []Update{Add(5, 6), Add(0, 2)}},
	}
	if len(log) != len(want) {
		t.Fatalf("hook saw %d batches, want %d: %+v", len(log), len(want), log)
	}
	for i := range want {
		if log[i].seq != want[i].seq || !slices.Equal(log[i].updates, want[i].updates) {
			t.Fatalf("hook record %d = %+v, want %+v", i, log[i], want[i])
		}
	}
	if got := e.Seq(); got != 3 {
		t.Fatalf("seq = %d, want 3", got)
	}

	// Detach: further applies are unobserved.
	e.SetApplyHook(nil)
	if _, err := e.AddEdge(9, 10); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("detached hook still invoked: %d records", len(log))
	}
}

// TestApplyHookError: a failing hook surfaces as *HookError while the
// in-memory state (and subscribers) still advanced.
func TestApplyHookError(t *testing.T) {
	e := NewEngine()
	boom := errors.New("disk full")
	e.SetApplyHook(func(rec AppliedBatch) error { return boom })
	events, cancel := e.Subscribe()
	defer cancel()

	_, err := e.Apply(Batch{Add(0, 1)})
	var he *HookError
	if !errors.As(err, &he) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want *HookError wrapping the hook's error", err)
	}
	if !e.HasEdge(0, 1) || e.Seq() != 1 {
		t.Fatal("state must advance even when the hook fails")
	}
	select {
	case ev := <-events:
		if ev.Vertex != 0 && ev.Vertex != 1 {
			t.Fatalf("unexpected event %+v", ev)
		}
	default:
		t.Fatal("subscribers must be notified even when the hook fails")
	}
	// AddEdge wraps the cause but keeps the HookError visible to errors.As.
	_, err = e.AddEdge(3, 4)
	if !errors.As(err, &he) {
		t.Fatalf("AddEdge err = %v, want *HookError", err)
	}
}

// TestReplaySilent: Replay applies like Apply but fires neither subscriber
// events nor the hook, and seq continues seamlessly afterwards.
func TestReplaySilent(t *testing.T) {
	e := NewEngine()
	hooked := 0
	e.SetApplyHook(func(rec AppliedBatch) error { hooked++; return nil })
	events, cancel := e.Subscribe()
	defer cancel()

	info, err := e.Replay(Batch{Add(0, 1), Add(1, 2), Add(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Applied != 3 || info.Seq != 3 {
		t.Fatalf("replay info = %+v", info)
	}
	if hooked != 0 {
		t.Fatal("Replay must not invoke the apply hook")
	}
	select {
	case ev := <-events:
		t.Fatalf("Replay delivered %+v; recovery must be silent", ev)
	default:
	}
	if e.Core(0) != 2 {
		t.Fatalf("replayed core(0) = %d, want 2", e.Core(0))
	}

	// Post-replay changes behave normally: events delivered, hook invoked,
	// seq continuous.
	if _, err := e.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if hooked != 1 {
		t.Fatalf("post-replay hook invocations = %d, want 1", hooked)
	}
	select {
	case ev := <-events:
		if ev.Seq != 4 {
			t.Fatalf("post-replay event seq = %d, want 4", ev.Seq)
		}
	default:
		t.Fatal("post-replay change not delivered")
	}
}

// TestReplaySilentAcrossStrategies: the silence contract holds for every
// batch execution strategy, including wholesale recomputation.
func TestReplaySilentAcrossStrategies(t *testing.T) {
	e := NewEngine(WithRebuildThreshold(4, 0.0)) // tiny floor: big batches rebuild
	events, cancel := e.Subscribe()
	defer cancel()
	batch := make(Batch, 0, 40)
	for i := 0; i < 40; i++ {
		batch = append(batch, Add(i%7, 7+i))
	}
	info, err := e.Replay(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recomputed {
		t.Fatalf("expected the rebuild strategy, got %+v", info)
	}
	select {
	case ev := <-events:
		t.Fatalf("recomputed Replay delivered %+v", ev)
	default:
	}
}

// TestApplyTap: the tap observes every applied batch after the hook, fires
// even when the hook fails (in-memory state advanced regardless), and is
// silent under Replay and ReplayNotify.
func TestApplyTap(t *testing.T) {
	e := NewEngine()
	boom := errors.New("disk full")
	hookErr := error(nil)
	e.SetApplyHook(func(rec AppliedBatch) error { return hookErr })
	type logged struct {
		seq     uint64
		updates []Update
	}
	var tapped []logged
	e.SetApplyTap(func(rec AppliedBatch) {
		tapped = append(tapped, logged{rec.Seq, slices.Clone(rec.Updates)})
	})

	if _, err := e.Apply(Batch{Add(0, 1), Add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	hookErr = boom
	_, err := e.Apply(Batch{Add(0, 2)})
	var he *HookError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HookError", err)
	}
	if len(tapped) != 2 {
		t.Fatalf("tap saw %d batches, want 2 (must fire even on hook failure): %+v", len(tapped), tapped)
	}
	if tapped[1].seq != 3 || !slices.Equal(tapped[1].updates, []Update{Add(0, 2)}) {
		t.Fatalf("tap record = %+v, want seq 3 / [Add(0,2)]", tapped[1])
	}

	// Replay and ReplayNotify are both re-applications of state that
	// originated elsewhere: neither reaches the tap.
	hookErr = nil
	if _, err := e.Replay(Batch{Add(5, 6)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReplayNotify(Batch{Add(6, 7)}); err != nil {
		t.Fatal(err)
	}
	if len(tapped) != 2 {
		t.Fatalf("tap invoked by Replay/ReplayNotify: %+v", tapped[2:])
	}

	// A tap without a hook still fires.
	e.SetApplyHook(nil)
	if _, err := e.AddEdge(8, 9); err != nil {
		t.Fatal(err)
	}
	if len(tapped) != 3 || tapped[2].seq != 6 {
		t.Fatalf("tap without hook: %+v", tapped)
	}
	// Detach: further applies are unobserved.
	e.SetApplyTap(nil)
	if _, err := e.AddEdge(9, 10); err != nil {
		t.Fatal(err)
	}
	if len(tapped) != 3 {
		t.Fatal("detached tap still invoked")
	}
}

// TestReplayNotify: ReplayNotify skips the hook and tap like Replay, but
// subscribers DO see the changes — the follower-side apply contract.
func TestReplayNotify(t *testing.T) {
	e := NewEngine()
	hooked, tapped := 0, 0
	e.SetApplyHook(func(AppliedBatch) error { hooked++; return nil })
	e.SetApplyTap(func(AppliedBatch) { tapped++ })
	events, cancel := e.Subscribe(WithBuffer(64))
	defer cancel()

	info, err := e.ReplayNotify(Batch{Add(0, 1), Add(1, 2), Add(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Applied != 3 || info.Seq != 3 {
		t.Fatalf("info = %+v", info)
	}
	if hooked != 0 || tapped != 0 {
		t.Fatalf("hook/tap invoked %d/%d times; ReplayNotify must skip both", hooked, tapped)
	}
	seen := 0
	for len(events) > 0 {
		ev := <-events
		if ev.Seq == 0 || ev.Seq > 3 {
			t.Fatalf("event with out-of-range seq: %+v", ev)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("ReplayNotify delivered no subscriber events")
	}
	if e.Core(0) != 2 {
		t.Fatalf("core(0) = %d, want 2", e.Core(0))
	}
}

// TestReplayNotifyAcrossStrategies: subscriber delivery holds for the
// rebuild strategy too (notifyDiff path).
func TestReplayNotifyAcrossStrategies(t *testing.T) {
	e := NewEngine(WithRebuildThreshold(4, 0.0))
	events, cancel := e.Subscribe(WithBuffer(256))
	defer cancel()
	batch := make(Batch, 0, 40)
	for i := 0; i < 40; i++ {
		batch = append(batch, Add(i%7, 7+i))
	}
	info, err := e.ReplayNotify(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recomputed {
		t.Fatalf("expected the rebuild strategy, got %+v", info)
	}
	if len(events) == 0 {
		t.Fatal("recomputed ReplayNotify delivered no events")
	}
}

// TestHookSeesParallelAndRebuildBatches: the hook fires once per Apply for
// every execution strategy with the right survivors.
func TestHookSeesParallelAndRebuildBatches(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
		n    int
	}{
		{"parallel", []Option{WithWorkers(4), WithSeed(3)}, 200},
		{"rebuild", []Option{WithRebuildThreshold(4, 0.0), WithSeed(3)}, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(tc.opts...)
			var got []Update
			var seq uint64
			calls := 0
			e.SetApplyHook(func(rec AppliedBatch) error {
				calls++
				got = slices.Clone(rec.Updates)
				seq = rec.Seq
				return nil
			})
			batch := make(Batch, 0, tc.n)
			for i := 0; i < tc.n; i++ {
				batch = append(batch, Add(i%9, 9+i))
			}
			info, err := e.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			if calls != 1 || seq != info.Seq || len(got) != tc.n {
				t.Fatalf("hook calls=%d seq=%d (want %d) survivors=%d (want %d)",
					calls, seq, info.Seq, len(got), tc.n)
			}
		})
	}
}

// ExampleEngine_SetApplyHook shows the durability pattern: log every batch
// before Apply returns.
func ExampleEngine_SetApplyHook() {
	e := NewEngine()
	e.SetApplyHook(func(rec AppliedBatch) error {
		fmt.Printf("seq %d: %d updates\n", rec.Seq, len(rec.Updates))
		return nil // e.g. append to a write-ahead log and fsync
	})
	e.AddEdge(0, 1)
	e.Apply(Batch{Add(1, 2), Add(0, 2)})
	// Output:
	// seq 1: 1 updates
	// seq 3: 2 updates
}

package kcore

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersDuringWrites drives the v1 concurrency contract
// under -race: one writer goroutine streams batches through Apply while
// reader goroutines hammer every query classification (point queries,
// bulk queries, views) and a subscriber drains change events.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	e := NewEngine(WithSeed(5))
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}); err != nil {
		t.Fatal(err)
	}

	ch, cancel := e.Subscribe(WithBuffer(256))
	done := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup

	// Writer: the only mutator, so it can track edge presence locally and
	// build always-valid mixed batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewPCG(5, 1))
		present := map[[2]int]bool{
			{0, 1}: true, {1, 2}: true, {0, 2}: true, {2, 3}: true, {3, 4}: true,
		}
		for step := 0; step < 400; step++ {
			var batch Batch
			used := map[[2]int]bool{}
			for len(batch) < 4 {
				u, v := rng.IntN(40), rng.IntN(40)
				if u == v {
					continue
				}
				key := [2]int{min(u, v), max(u, v)}
				if used[key] {
					continue
				}
				used[key] = true
				if present[key] {
					batch = append(batch, Remove(u, v))
					present[key] = false
				} else {
					batch = append(batch, Add(u, v))
					present[key] = true
				}
			}
			if _, err := e.Apply(batch); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()

	// Readers: every query method classified as a reader.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 7))
			for stop := false; !stop; {
				select {
				case <-done:
					stop = true // finish this pass, then exit
				default:
				}
				v := rng.IntN(40)
				_ = e.Core(v)
				_ = e.Degree(v)
				_ = e.Neighbors(v)
				_ = e.HasEdge(v, (v+1)%40)
				switch rng.IntN(4) {
				case 0:
					_ = e.Cores()
					_ = e.Degeneracy()
				case 1:
					_ = e.KCore(2)
					_ = e.Edges()
				case 2:
					view := e.View()
					if view.Core(v) > view.Degeneracy() {
						t.Error("view internally inconsistent")
						return
					}
				case 3:
					_ = e.Community(v, 2)
					_ = e.CoreComponents(2)
				}
				reads.Add(1)
			}
		}(r)
	}

	// Subscriber: drains events until the writer finishes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()

	wg.Wait()
	cancel()
	if reads.Load() == 0 {
		t.Fatal("readers never ran")
	}
	// 5 seed updates + 400 batches of 4.
	if e.Seq() != 1605 {
		t.Fatalf("Seq = %d, want 1605", e.Seq())
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentViews takes snapshots while the graph churns and checks
// each one for internal consistency (degeneracy matches its own cores).
func TestConcurrentViews(t *testing.T) {
	e := NewEngine(WithSeed(2))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 200; i++ {
			if _, err := e.Apply(Batch{Add(i, i+1), Add(i, i+2)}); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := e.View()
				maxc := 0
				for _, c := range v.Cores() {
					if c > maxc {
						maxc = c
					}
				}
				if maxc != v.Degeneracy() {
					t.Errorf("view degeneracy %d, cores say %d", v.Degeneracy(), maxc)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

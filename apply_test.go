package kcore

import (
	"errors"
	"testing"
)

// TestApplyBatchSemantics is the table test for Apply: mixed operations,
// validation failures (error-mid-batch must leave the engine untouched),
// and the structured errors carried by *BatchError.
func TestApplyBatchSemantics(t *testing.T) {
	triangle := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	tests := []struct {
		name      string
		seed      [][2]int
		batch     Batch
		wantErr   error // sentinel expected via errors.Is; nil for success
		wantIdx   int   // BatchError.Index when wantErr != nil
		applied   int
		coalesced int
		edges     int // NumEdges after the call
		cores     map[int]int
		totalLen  int // len(Total.CoreChanged); -1 to skip
	}{
		{
			name:     "empty batch",
			batch:    Batch{},
			applied:  0,
			edges:    0,
			totalLen: 0,
		},
		{
			name:     "pure insertions",
			batch:    Batch{Add(0, 1), Add(1, 2), Add(0, 2)},
			applied:  3,
			edges:    3,
			cores:    map[int]int{0: 2, 1: 2, 2: 2},
			totalLen: 3,
		},
		{
			name:     "mixed ops",
			seed:     triangle,
			batch:    Batch{Remove(0, 2), Add(2, 3), Add(0, 3)},
			applied:  3,
			edges:    4,
			cores:    map[int]int{0: 2, 1: 2, 2: 2, 3: 2}, // the batch leaves a 4-cycle
			totalLen: -1,
		},
		{
			name:      "add then remove same edge coalesces",
			batch:     Batch{Add(4, 5), Remove(4, 5)},
			applied:   0,
			coalesced: 2,
			edges:     0,
			cores:     map[int]int{4: 0, 5: 0},
			totalLen:  0, // the pair is elided: no transient changes
		},
		{
			name:      "remove then re-add present edge coalesces",
			seed:      [][2]int{{0, 1}},
			batch:     Batch{Remove(0, 1), Add(0, 1)},
			applied:   0,
			coalesced: 2,
			edges:     1,
			cores:     map[int]int{0: 1, 1: 1},
			totalLen:  0, // elided: endpoints never transit through core 0
		},
		{
			name: "coalesced pair then real re-add",
			// Add+Remove cancel; the trailing Add survives and applies.
			batch:     Batch{Add(0, 1), Remove(0, 1), Add(0, 1)},
			applied:   1,
			coalesced: 2,
			edges:     1,
			cores:     map[int]int{0: 1, 1: 1},
			totalLen:  2,
		},
		{
			name:    "self loop rejected",
			seed:    triangle,
			batch:   Batch{Add(3, 4), Add(5, 5)},
			wantErr: ErrSelfLoop,
			wantIdx: 1,
			edges:   3,
		},
		{
			name:    "negative vertex rejected",
			batch:   Batch{Add(-1, 2)},
			wantErr: ErrVertexRange,
			wantIdx: 0,
			edges:   0,
		},
		{
			name:    "duplicate against graph rejected",
			seed:    triangle,
			batch:   Batch{Add(2, 3), Add(0, 1)},
			wantErr: ErrDuplicateEdge,
			wantIdx: 1,
			edges:   3,
		},
		{
			name:    "duplicate within batch rejected",
			batch:   Batch{Add(0, 1), Add(1, 0)},
			wantErr: ErrDuplicateEdge,
			wantIdx: 1,
			edges:   0,
		},
		{
			name:    "missing removal rejected",
			seed:    triangle,
			batch:   Batch{Remove(0, 3)},
			wantErr: ErrMissingEdge,
			wantIdx: 0,
			edges:   3,
		},
		{
			name:    "removal invalidated by earlier removal",
			seed:    triangle,
			batch:   Batch{Remove(0, 1), Remove(1, 0)},
			wantErr: ErrMissingEdge,
			wantIdx: 1,
			edges:   3,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			e, err := FromEdges(tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			before := e.Cores()
			info, err := e.Apply(tc.batch)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Apply error = %v, want errors.Is %v", err, tc.wantErr)
				}
				var be *BatchError
				if !errors.As(err, &be) {
					t.Fatalf("Apply error %T is not *BatchError", err)
				}
				if be.Index != tc.wantIdx {
					t.Fatalf("BatchError.Index = %d, want %d", be.Index, tc.wantIdx)
				}
				// Error-mid-batch: nothing may have been applied.
				if info.Applied != 0 {
					t.Fatalf("Applied = %d after failed batch", info.Applied)
				}
				after := e.Cores()
				for v := range before {
					if before[v] != after[v] {
						t.Fatalf("core(%d) mutated by failed batch: %d -> %d", v, before[v], after[v])
					}
				}
				if e.Seq() != 0 {
					t.Fatalf("Seq = %d after failed batch", e.Seq())
				}
			} else {
				if err != nil {
					t.Fatal(err)
				}
				if info.Applied != tc.applied {
					t.Fatalf("Applied = %d, want %d", info.Applied, tc.applied)
				}
				if info.Coalesced != tc.coalesced {
					t.Fatalf("Coalesced = %d, want %d", info.Coalesced, tc.coalesced)
				}
				// Updates is positional: one entry per batch position, with
				// coalesced positions zeroed and marked.
				if len(info.Updates) != len(tc.batch) {
					t.Fatalf("len(Updates) = %d, want %d", len(info.Updates), len(tc.batch))
				}
				gotCoalesced := 0
				for _, u := range info.Updates {
					if u.Coalesced {
						gotCoalesced++
						if u.CoreChanged != nil || u.Visited != 0 {
							t.Fatalf("coalesced entry carries data: %+v", u)
						}
					}
				}
				if gotCoalesced != tc.coalesced {
					t.Fatalf("coalesced entries = %d, want %d", gotCoalesced, tc.coalesced)
				}
				// Coalesced updates consume no sequence numbers.
				if info.Seq != uint64(tc.applied) {
					t.Fatalf("Seq = %d, want %d", info.Seq, tc.applied)
				}
				if tc.totalLen >= 0 && len(info.Total.CoreChanged) != tc.totalLen {
					t.Fatalf("Total.CoreChanged = %v, want %d entries",
						info.Total.CoreChanged, tc.totalLen)
				}
			}
			if got := e.NumEdges(); got != tc.edges {
				t.Fatalf("NumEdges = %d, want %d", got, tc.edges)
			}
			for v, c := range tc.cores {
				if e.Core(v) != c {
					t.Fatalf("core(%d) = %d, want %d", v, e.Core(v), c)
				}
			}
			if err := e.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestApplyAggregatedDedup: a vertex whose core changes twice during a batch
// must appear exactly once in the aggregated Total.CoreChanged, while the
// per-update Updates keep every occurrence.
func TestApplyAggregatedDedup(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Closing the triangle lifts 0,1,2 to core 2; removing a different
	// triangle edge drops them back. (Removing the same edge would coalesce
	// the pair away instead — see TestApplyBatchSemantics.)
	info, err := e.Apply(Batch{Add(0, 2), Remove(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Updates[0].CoreChanged) != 3 || len(info.Updates[1].CoreChanged) != 3 {
		t.Fatalf("per-update changes = %v", info.Updates)
	}
	if len(info.Total.CoreChanged) != 3 {
		t.Fatalf("Total.CoreChanged = %v, want 3 deduplicated entries", info.Total.CoreChanged)
	}
	seen := map[int]bool{}
	for _, v := range info.Total.CoreChanged {
		if seen[v] {
			t.Fatalf("vertex %d duplicated in %v", v, info.Total.CoreChanged)
		}
		seen[v] = true
	}
	if info.Total.Visited != info.Updates[0].Visited+info.Updates[1].Visited {
		t.Fatalf("Total.Visited = %d, want sum of %v", info.Total.Visited, info.Updates)
	}
}

// TestVertexOpsDedupAndAtomicity covers the batch-backed vertex operations:
// aggregated results deduplicate, and invalid input applies nothing.
func TestVertexOpsDedupAndAtomicity(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate neighbors: atomic failure, no partial edges.
	if _, _, err := e.AddVertexWithEdges([]int{0, 0}); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate neighbor error = %v", err)
	}
	if e.NumEdges() != 3 || e.Degree(3) != 0 {
		t.Fatalf("failed AddVertexWithEdges mutated the engine: m=%d deg(3)=%d",
			e.NumEdges(), e.Degree(3))
	}
	v, info, err := e.AddVertexWithEdges([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || e.Core(v) != 3 {
		t.Fatalf("v=%d core=%d", v, e.Core(v))
	}
	for i, x := range info.CoreChanged {
		for _, y := range info.CoreChanged[i+1:] {
			if x == y {
				t.Fatalf("aggregated CoreChanged has duplicate %d: %v", x, info.CoreChanged)
			}
		}
	}
	if _, err := e.RemoveVertex(v); err != nil {
		t.Fatal(err)
	}
	if e.Core(v) != 0 || e.Degree(v) != 0 {
		t.Fatalf("vertex %d not disconnected", v)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSentinelErrors: every public mutation wraps the exported sentinels so
// errors.Is works through all layers (engine -> korder/traversal -> graph).
func TestSentinelErrors(t *testing.T) {
	for _, alg := range []Algorithm{OrderBased, Traversal} {
		e := NewEngine(WithAlgorithm(alg))
		if _, err := e.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
			t.Fatalf("%v: duplicate add error = %v", alg, err)
		}
		if _, err := e.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
			t.Fatalf("%v: self loop error = %v", alg, err)
		}
		if _, err := e.AddEdge(-3, 1); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("%v: negative id error = %v", alg, err)
		}
		// Both in-range and out-of-range missing edges.
		if _, err := e.RemoveEdge(0, 5); !errors.Is(err, ErrMissingEdge) {
			t.Fatalf("%v: missing remove error = %v", alg, err)
		}
		if _, err := e.RemoveEdge(50, 60); !errors.Is(err, ErrMissingEdge) {
			t.Fatalf("%v: out-of-range remove error = %v", alg, err)
		}
	}
	// ErrWrongEngine from snapshot operations on the traversal engine.
	tr := NewEngine(WithAlgorithm(Traversal))
	if err := tr.SaveIndex(discardWriter{}); !errors.Is(err, ErrWrongEngine) {
		t.Fatalf("SaveIndex error = %v, want ErrWrongEngine", err)
	}
	if _, err := LoadIndex(nil, WithAlgorithm(Traversal)); !errors.Is(err, ErrWrongEngine) {
		t.Fatalf("LoadIndex error = %v, want ErrWrongEngine", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestViewSnapshot: a View must stay frozen while the engine moves on.
func TestViewSnapshot(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	v := e.View()
	if v.Seq() != 0 || v.NumEdges() != 3 || v.Degeneracy() != 2 || v.Core(0) != 2 {
		t.Fatalf("initial view wrong: seq=%d m=%d deg=%d", v.Seq(), v.NumEdges(), v.Degeneracy())
	}
	if len(v.KCore(2)) != 3 || len(v.KCore(3)) != 0 {
		t.Fatalf("view KCore wrong: %v", v.KCore(2))
	}
	// Mutate the engine: the view must not move.
	if _, err := e.Apply(Batch{Add(0, 3), Add(1, 3), Add(2, 3)}); err != nil {
		t.Fatal(err)
	}
	if e.Core(0) != 3 || e.Seq() != 3 {
		t.Fatalf("engine core(0)=%d seq=%d", e.Core(0), e.Seq())
	}
	if v.Core(0) != 2 || v.Core(3) != 0 || v.NumEdges() != 3 || v.Seq() != 0 {
		t.Fatal("view changed after engine mutation")
	}
	// Mutating the copy returned by Cores must not corrupt the view.
	v.Cores()[0] = 99
	if v.Core(0) != 2 {
		t.Fatal("View.Cores aliases internal storage")
	}
	v2 := e.View()
	if v2.Seq() != 3 || v2.Degeneracy() != 3 || v2.NumVertices() != 4 {
		t.Fatalf("second view wrong: seq=%d deg=%d n=%d", v2.Seq(), v2.Degeneracy(), v2.NumVertices())
	}
}

// TestAddRemoveEdgesConveniences covers the pure-batch helpers.
func TestAddRemoveEdgesConveniences(t *testing.T) {
	e := NewEngine()
	info, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Applied != 4 || e.NumEdges() != 4 || e.Core(0) != 2 {
		t.Fatalf("AddEdges: applied=%d m=%d core(0)=%d", info.Applied, e.NumEdges(), e.Core(0))
	}
	if _, err := e.RemoveEdges([][2]int{{0, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if e.NumEdges() != 2 || e.Core(0) != 1 {
		t.Fatalf("RemoveEdges: m=%d core(0)=%d", e.NumEdges(), e.Core(0))
	}
	if _, err := e.RemoveEdges([][2]int{{0, 1}, {0, 1}}); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("double removal error = %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

package kcore

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// churnGen builds always-valid mixed batches by tracking edge presence
// locally (toggling matches the overlay's coalescing semantics: an add
// later undone by a remove in the same batch is valid and elided).
type churnGen struct {
	rng     *rand.Rand
	present map[[2]int]bool
	n       int
}

func newChurnGen(seed uint64, n int) *churnGen {
	return &churnGen{rng: rand.New(rand.NewPCG(seed, 1)), present: map[[2]int]bool{}, n: n}
}

func (g *churnGen) batch(size int) Batch {
	batch := make(Batch, 0, size)
	for len(batch) < size {
		u, v := g.rng.IntN(g.n), g.rng.IntN(g.n)
		if u == v {
			continue
		}
		key := [2]int{min(u, v), max(u, v)}
		if g.present[key] {
			batch = append(batch, Remove(u, v))
			g.present[key] = false
		} else {
			batch = append(batch, Add(u, v))
			g.present[key] = true
		}
	}
	return batch
}

// TestEpochMatchesLocked is the quiesced differential for the epoch read
// path: after every batch — across the sequential, conflict-grouped
// parallel, and wholesale-recompute execution strategies, with removals,
// coalesced pairs, and vertex operations mixed in — every lock-free read
// API must agree exactly with the authoritative maintained state that the
// old RWMutex read path answered from. Engine.Validate holds the lock and
// compares the published epoch field-by-field against the maintainer, so
// one incremental-publication bug (a missed changed vertex, a stale
// degeneracy) fails here deterministically.
func TestEpochMatchesLocked(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"sequential", []Option{WithSeed(3), WithWorkers(1), WithRebuildThreshold(-1, 0)}},
		{"parallel", []Option{WithSeed(3), WithWorkers(4), WithRebuildThreshold(-1, 0)}},
		{"rebuild", []Option{WithSeed(3), WithWorkers(1), WithRebuildThreshold(1, 0.0001)}},
		{"traversal", []Option{WithSeed(3), WithAlgorithm(Traversal)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(tc.opts...)
			gen := newChurnGen(11, 300)
			for step := 0; step < 40; step++ {
				size := 1 + gen.rng.IntN(200)
				if _, err := e.Apply(gen.batch(size)); err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				if err := e.Validate(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			// The epoch-served reads must agree with a from-scratch
			// decomposition of the same edge set.
			want, err := Decompose(e.Edges())
			if err != nil {
				t.Fatal(err)
			}
			got := e.Cores()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("core[%d] = %d, decomposition says %d", v, got[v], want[v])
				}
			}
			maxc := 0
			for _, c := range want {
				maxc = max(maxc, c)
			}
			if d := e.Degeneracy(); d != maxc {
				t.Fatalf("Degeneracy() = %d, want %d", d, maxc)
			}
			vtx, edg, deg, seq := e.Counts()
			if vtx != e.NumVertices() || edg != e.NumEdges() || deg != maxc || seq != e.Seq() {
				t.Fatalf("Counts() = (%d,%d,%d,%d) inconsistent with point reads", vtx, edg, deg, seq)
			}
		})
	}
}

// TestEpochVertexOps covers the epoch's incremental growth paths: vertex
// insertion (fresh ids beyond the previous epoch's range) and removal.
func TestEpochVertexOps(t *testing.T) {
	e := NewEngine(WithSeed(9))
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n := e.NumVertices()
		nbrs := []int{i % n, (i + 1) % n}
		if nbrs[0] == nbrs[1] {
			nbrs = nbrs[:1]
		}
		if _, _, err := e.AddVertexWithEdges(nbrs); err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("after vertex add %d: %v", i, err)
		}
	}
	for v := 0; v < 10; v++ {
		if _, err := e.RemoveVertex(v); err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("after vertex remove %d: %v", v, err)
		}
	}
}

// TestEpochAfterPanicRepair pins the full republication after panic
// containment: the repair's diff is relative to panic-time cores, not the
// last epoch, so the epoch must be rebuilt wholesale.
func TestEpochAfterPanicRepair(t *testing.T) {
	e := NewEngine(WithSeed(7))
	gen := newChurnGen(13, 60)
	if _, err := e.Apply(gen.batch(120)); err != nil {
		t.Fatal(err)
	}
	boom := true
	e.SetApplyProbe(func(int) {
		if boom {
			boom = false
			panic("injected")
		}
	})
	var pe *PanicError
	if _, err := e.Apply(gen.batch(10)); !errors.As(err, &pe) {
		t.Fatalf("Apply after injected panic: %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("after panic repair: %v", err)
	}
	if _, err := e.Apply(gen.batch(10)); err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("after post-repair batch: %v", err)
	}
}

// TestEpochRoundTrip checks that restore paths publish an initial epoch:
// an engine rebuilt via FromIndex or LoadIndex must answer reads
// immediately and pass the epoch tripwire.
func TestEpochRoundTrip(t *testing.T) {
	e := NewEngine(WithSeed(5))
	gen := newChurnGen(17, 80)
	if _, err := e.Apply(gen.batch(200)); err != nil {
		t.Fatal(err)
	}
	st, err := e.View(WithIndex()).Index()
	if err != nil {
		t.Fatal(err)
	}
	re, err := FromIndex(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("FromIndex engine: %v", err)
	}
	if re.Seq() != e.Seq() || re.Degeneracy() != e.Degeneracy() {
		t.Fatalf("FromIndex: seq/degeneracy mismatch")
	}
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	le, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := le.Validate(); err != nil {
		t.Fatalf("LoadIndex engine: %v", err)
	}
	if got, want := le.Cores(), e.Cores(); len(got) != len(want) {
		t.Fatalf("LoadIndex cores len %d, want %d", len(got), len(want))
	}
}

// TestEpochReadsLockFree pins the contract the refactor exists for: every
// read API over the maintained state answers while the engine write lock
// is held by someone else. Under the old RWMutex read path each of these
// calls would deadlock this test.
func TestEpochReadsLockFree(t *testing.T) {
	e := NewEngine(WithSeed(2))
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = e.Core(0)
		_, _ = e.CoreSeq(1)
		_ = e.Cores()
		_ = e.KCore(2)
		_ = e.Degeneracy()
		_, _, _, _ = e.Counts()
		_ = e.Seq()
		_ = e.NumVertices()
		_ = e.NumEdges()
		_ = e.ExecStats()
		v := e.View()
		_ = v.Cores()
		_ = v.KCore(1)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read APIs blocked on the engine mutex")
	}
}

// groundTruth is the per-sequence-number reference state for the
// linearizability differential, recorded from a quiesced reference engine.
type groundTruth struct {
	cores    []int
	vertices int
	edges    int
	maxCore  int
}

// TestReadLinearizabilityDifferential is the concurrent differential for
// epoch publication: reader goroutines hammer the lock-free read APIs
// while the writer streams batches, and every observation is checked
// against the state a reference engine (applying the identical batches,
// quiesced) reports for the same sequence number. Readers additionally
// assert per-goroutine monotonicity: the sequence number a read reports
// never goes backwards. Run under -race at GOMAXPROCS=4 in CI.
func TestReadLinearizabilityDifferential(t *testing.T) {
	const (
		vertices = 200
		batches  = 120
		readers  = 4
	)
	e := NewEngine(WithSeed(21), WithWorkers(4))
	ref := NewEngine(WithSeed(21), WithWorkers(1))

	// Ground truth per observable seq, recorded by the writer before the
	// batch is applied to the engine under test: readers can then never
	// observe a seq the map does not yet hold.
	var gtMu sync.Mutex
	gt := map[uint64]*groundTruth{}
	record := func(seq uint64) {
		g := &groundTruth{cores: ref.Cores()}
		g.vertices, g.edges, g.maxCore, _ = ref.Counts()
		gtMu.Lock()
		gt[seq] = g
		gtMu.Unlock()
	}
	lookup := func(seq uint64) *groundTruth {
		gtMu.Lock()
		defer gtMu.Unlock()
		return gt[seq]
	}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	record(0)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		gen := newChurnGen(29, vertices)
		for step := 0; step < batches; step++ {
			batch := gen.batch(1 + gen.rng.IntN(80))
			refInfo, err := ref.Apply(append(Batch(nil), batch...))
			if err != nil {
				t.Errorf("ref Apply: %v", err)
				return
			}
			record(refInfo.Seq)
			info, err := e.Apply(batch)
			if err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
			if info.Seq != refInfo.Seq {
				t.Errorf("seq diverged: %d vs ref %d", info.Seq, refInfo.Seq)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(r), 3))
			var lastSeq uint64
			check := func(seq uint64, what string, ok func(g *groundTruth) bool) {
				if seq < lastSeq {
					t.Errorf("reader %d: %s seq went backwards: %d after %d", r, what, seq, lastSeq)
				}
				lastSeq = seq
				g := lookup(seq)
				if g == nil {
					t.Errorf("reader %d: observed unknown seq %d via %s", r, seq, what)
					return
				}
				if !ok(g) {
					t.Errorf("reader %d: %s inconsistent with ground truth at seq %d", r, what, seq)
				}
			}
			for stop := false; !stop; {
				select {
				case <-done:
					stop = true // one final pass after the writer exits
				default:
				}
				x := rng.IntN(vertices)
				c, seq := e.CoreSeq(x)
				check(seq, "CoreSeq", func(g *groundTruth) bool {
					want := 0
					if x < len(g.cores) {
						want = g.cores[x]
					}
					return c == want
				})
				vtx, edg, deg, seq := e.Counts()
				check(seq, "Counts", func(g *groundTruth) bool {
					return vtx == g.vertices && edg == g.edges && deg == g.maxCore
				})
				v := e.View()
				cores := v.Cores()
				check(v.Seq(), "View", func(g *groundTruth) bool {
					if len(cores) != len(g.cores) || v.NumVertices() != g.vertices ||
						v.NumEdges() != g.edges || v.Degeneracy() != g.maxCore {
						return false
					}
					for i := range cores {
						if cores[i] != g.cores[i] {
							return false
						}
					}
					return true
				})
			}
		}(r)
	}
	wg.Wait()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Final quiesced cross-check: test engine ≡ reference engine.
	got, want := e.Cores(), ref.Cores()
	if len(got) != len(want) {
		t.Fatalf("cores len %d, ref %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core[%d] = %d, ref %d", v, got[v], want[v])
		}
	}
}

package kcore

import (
	"sync/atomic"
	"testing"
)

func drain(ch <-chan CoreChange) []CoreChange {
	var out []CoreChange
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestSubscribeDeliversChanges(t *testing.T) {
	e := NewEngine()
	ch, cancel := e.Subscribe(WithBuffer(32))
	defer cancel()

	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	evs := drain(ch)
	if len(evs) != 2 {
		t.Fatalf("events after first edge = %v, want 2", evs)
	}
	for _, ev := range evs {
		if ev.OldCore != 0 || ev.NewCore != 1 || ev.Seq != 1 {
			t.Fatalf("bad event %+v", ev)
		}
	}

	// Batch completing a triangle: three rises to core 2, all with the
	// batch's second sequence number.
	if _, err := e.Apply(Batch{Add(1, 2), Add(0, 2)}); err != nil {
		t.Fatal(err)
	}
	evs = drain(ch)
	bySeq := map[uint64]int{}
	for _, ev := range evs {
		bySeq[ev.Seq]++
	}
	if bySeq[2] != 1 || bySeq[3] != 3 {
		t.Fatalf("events per seq = %v (events %v)", bySeq, evs)
	}

	// Removal events report the fall.
	if _, err := e.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	evs = drain(ch)
	if len(evs) != 3 {
		t.Fatalf("removal events = %v", evs)
	}
	for _, ev := range evs {
		if ev.OldCore != 2 || ev.NewCore != 1 || ev.Seq != 4 {
			t.Fatalf("bad removal event %+v", ev)
		}
	}
}

func TestSubscribeCancelClosesChannel(t *testing.T) {
	e := NewEngine()
	ch, cancel := e.Subscribe()
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	// Updates after cancel must not panic (send on closed channel).
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeMinCoreFilter(t *testing.T) {
	e := NewEngine()
	ch, cancel := e.Subscribe(WithMinCore(2), WithBuffer(32))
	defer cancel()
	// Rises to core 1 are filtered out.
	if _, err := e.Apply(Batch{Add(0, 1), Add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if evs := drain(ch); len(evs) != 0 {
		t.Fatalf("filtered events leaked: %v", evs)
	}
	// The rise 1 -> 2 crosses the threshold.
	if _, err := e.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if evs := drain(ch); len(evs) != 3 {
		t.Fatalf("threshold events = %v, want 3", evs)
	}
	// The fall 2 -> 1 involves level 2 and is delivered too.
	if _, err := e.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if evs := drain(ch); len(evs) != 3 {
		t.Fatalf("falling events = %v, want 3", evs)
	}
}

func TestSubscribeSlowConsumerDropsNotBlocks(t *testing.T) {
	e := NewEngine()
	var dropped atomic.Uint64
	ch, cancel := e.Subscribe(WithBuffer(1), WithDropCounter(&dropped))
	defer cancel()
	// Six rises against a buffer of one (two for the first edge, one for
	// the second, three for the triangle closure): Apply must not block,
	// exactly one event is retained, and the counter sees the rest.
	if _, err := e.Apply(Batch{Add(0, 1), Add(1, 2), Add(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if evs := drain(ch); len(evs) != 1 {
		t.Fatalf("buffered events = %v, want exactly 1", evs)
	}
	if got := dropped.Load(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	// The subscription keeps working after drops.
	if _, err := e.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if evs := drain(ch); len(evs) != 1 {
		t.Fatalf("post-drop events = %v, want 1", evs)
	}
}

func TestSubscribeMultiple(t *testing.T) {
	e := NewEngine()
	a, cancelA := e.Subscribe(WithBuffer(8))
	b, cancelB := e.Subscribe(WithBuffer(8))
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if len(drain(a)) != 2 || len(drain(b)) != 2 {
		t.Fatal("both subscribers should receive events")
	}
	cancelA()
	if _, err := e.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if len(drain(b)) != 1 {
		t.Fatal("surviving subscriber missed events")
	}
	cancelB()
}
